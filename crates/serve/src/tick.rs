//! `TickCore`: the mode-agnostic per-round serving state machine.
//!
//! Both serving drivers used to carry their own copy of the six-phase
//! round loop — [`ServeEngine`](crate::ServeEngine) for the unsharded
//! case and `ShardPlane` (crates/shard) for the N-lane case. `TickCore`
//! is that loop lifted out once: drain arrivals → admission → activate →
//! boundary expiry → carve chunks → run on a
//! [`StepKernel`](noswalker_core::StepKernel) → deadline check →
//! finalize/handoff. A *driver* owns the loop around
//! [`TickCore::tick`] and supplies the clock through the
//! [`TickClock`] seam:
//!
//! * **lockstep** — a [`ModelClock`](noswalker_core::ModelClock); each
//!   tick charges the kernels' deterministic `advance_ns`, idle gaps jump
//!   to the next arrival, replays are bit-identical
//!   ([`ServeEngine`](crate::ServeEngine), `ShardPlane`).
//! * **realtime** — a wall clock confined to [`crate::realtime`]; an
//!   autonomous background thread ticks the same state machine against
//!   real time and streams partial results per tick.
//!
//! The core is *lane*-structured: one lane per shard (admission queue,
//! walker-pool quota, sequential + parallel kernels, owned vertex
//! range), with a [`LaneRouter`] deciding which lane admits a query and
//! which lane owns a handed-off walker. With a single lane every phase
//! degenerates to the unsharded engine's behavior bit-for-bit (the
//! `shard_plane` N=1 test pins this), which is what lets both shells be
//! thin wrappers over the same code.

use crate::admission::{Admission, AdmissionController};
use crate::app::{query_stream_seed, QueryClass, QueryTable, RoundApp, ServeWalker};
use crate::engine::{QueryOutcome, ServeError, ServeOptions, ServeReport};
use noswalker_core::audit::{Trace, TraceEvent};
use noswalker_core::{
    audit_handoffs, audit_queries, LatencyHistogram, OnDiskGraph, ParallelKernel, QueryId,
    QuerySource, QuerySpec, QueryStats, RunMetrics, SequentialKernel, StepKernel, TickClock,
};
use noswalker_graph::VertexId;
use noswalker_storage::MemoryBudget;
use std::collections::BTreeMap;
use std::ops::Range;
use std::sync::Arc;

/// The one deadline predicate every serving site uses: a deadline landing
/// exactly on the clock has passed.
pub(crate) fn deadline_passed(deadline_ns: Option<u64>, now_ns: u64) -> bool {
    deadline_ns.is_some_and(|d| d <= now_ns)
}

/// One lane's immutable serving substrate: its (sub-)graph, its share of
/// the memory budget, and the vertex range it owns. The unsharded engine
/// is a single lane owning the whole vertex space.
#[derive(Debug, Clone)]
pub struct LaneConfig {
    /// The stored graph this lane's kernels walk.
    pub graph: Arc<OnDiskGraph>,
    /// The lane's memory budget (kernels and quota sizing read it).
    pub budget: Arc<MemoryBudget>,
    /// Vertices this lane owns; walkers landing outside emigrate.
    pub owned: Range<VertexId>,
}

/// Decides which lane admits a query and which lane owns a vertex.
///
/// Kept as a seam (rather than baking in the shard router) because the
/// shard router lives in `noswalker-shard`, which depends on this crate:
/// the plane injects its range-lookup router, the unsharded shell injects
/// [`SingleLane`].
pub trait LaneRouter: Send {
    /// The lane that admits `q` and issues its fresh walkers.
    fn home_of(&self, q: &QuerySpec) -> usize;
    /// The lane owning vertex `v` (where a handed-off walker re-enters).
    fn lane_of(&self, v: VertexId) -> usize;
}

/// The trivial router: everything lives on lane 0.
#[derive(Debug, Default, Clone, Copy)]
pub struct SingleLane;

impl LaneRouter for SingleLane {
    fn home_of(&self, _q: &QuerySpec) -> usize {
        0
    }
    fn lane_of(&self, _v: VertexId) -> usize {
        0
    }
}

/// A query in the active set.
#[derive(Debug)]
struct ActiveQuery {
    spec: QuerySpec,
    class: QueryClass,
    stats: QueryStats,
    digest: u64,
    deadline_missed: bool,
    /// The lane that admitted the query and issues its fresh walkers.
    home: u32,
    /// No more fresh walkers are issued (deadline fired or the caller
    /// cancelled); handed-off walkers retire through pre-cancelled slots
    /// and the query finalizes once every issued walker is accounted for.
    draining: bool,
    /// The caller cancelled the query through the realtime ingress. Never
    /// set in lockstep mode, so lockstep behavior is unchanged.
    cancel_requested: bool,
}

impl ActiveQuery {
    /// Budget still issuable as fresh walkers (zero once draining — a
    /// missed or cancelled query surrenders its remaining budget).
    fn fresh_unissued(&self) -> u64 {
        if self.draining {
            0
        } else {
            self.spec.walkers - self.stats.issued
        }
    }

    /// Issued walkers not yet terminated: parked in a handoff queue.
    fn in_flight(&self) -> u64 {
        self.stats.issued - self.stats.completed - self.stats.cancelled
    }
}

/// Per-(lane, kernel) round-carve state.
#[derive(Default)]
struct Group {
    entries: Vec<(QueryClass, u32, Option<u64>, u64)>,
    chunks: Vec<(u32, u64, u64)>,
    /// `(index into active, table slot, fresh walkers issued)`; immigrant
    /// -only slots charge zero fresh walkers.
    charged: Vec<(usize, u32, u64)>,
    resumed: Vec<ServeWalker>,
    /// Slots to pre-cancel before the round runs (draining queries).
    precancel: Vec<u32>,
    /// `query id → slot` for this group (linear scan; tiny and
    /// deterministic — no hash maps in the digest path, lint rule L9).
    slot_of_query: Vec<(u64, u32)>,
}

/// One lane's mutable serving machinery.
struct Lane {
    seq: SequentialKernel,
    par: ParallelKernel,
    admission: AdmissionController,
    quota: u64,
    owned: Range<VertexId>,
}

/// What one [`TickCore::tick`] call did.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tick {
    /// A round ran; the clock was charged with its modeled duration.
    Ran,
    /// Nothing is runnable right now. `next_arrival_ns` is the earliest
    /// time the source may have new work (`None` when it never will);
    /// the driver decides whether to jump the clock there (lockstep),
    /// wait for real time or commands (realtime), or stop.
    Idle {
        /// Earliest future arrival, from the source, or `None`.
        next_arrival_ns: Option<u64>,
    },
    /// The `max_rounds` backstop tripped: every in-flight query was
    /// finalized as a degraded partial and the pending queues drained as
    /// shed. The driver must stop and [`TickCore::finish`].
    Exhausted,
}

/// Everything a finished [`TickCore`] run produced: the merged
/// [`ServeReport`] plus the lane-plane extras.
#[derive(Debug)]
pub struct TickReport {
    /// The merged report — outcomes, global histograms, merged metrics.
    pub report: ServeReport,
    /// Per-lane completion-latency histograms (what the global
    /// `report.histograms` were merged from).
    pub lane_histograms: Vec<BTreeMap<String, LatencyHistogram>>,
    /// Total cross-lane handoff hops (emigrations).
    pub walkers_emigrated: u64,
    /// Total handed-off walkers re-admitted (equals `walkers_emigrated`
    /// at run end — the conservation law with zero in flight).
    pub walkers_immigrated: u64,
}

/// One parked walker: the owning query and its full mobile state.
type Parked = (u64, ServeWalker);

/// The mode-agnostic round state machine (see module docs). A driver
/// constructs one per run, calls [`tick`](Self::tick) until the source
/// is exhausted (or forever, in realtime mode), and closes with
/// [`finish`](Self::finish).
pub struct TickCore {
    lanes: Vec<Lane>,
    router: Box<dyn LaneRouter>,
    opts: ServeOptions,
    nv: u32,
    step_cost: u64,
    active: Vec<ActiveQuery>,
    inbox: Vec<Vec<Parked>>,
    outcomes: Vec<QueryOutcome>,
    lane_histograms: Vec<BTreeMap<String, LatencyHistogram>>,
    metrics: RunMetrics,
    rounds: u64,
    total_emigrated: u64,
    total_immigrated: u64,
    /// Watermark for [`take_new_outcomes`](Self::take_new_outcomes): how
    /// many of `outcomes` the egress side has already seen.
    streamed: usize,
}

impl std::fmt::Debug for TickCore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TickCore")
            .field("lanes", &self.lanes.len())
            .field("rounds", &self.rounds)
            .field("active", &self.active.len())
            .field("opts", &self.opts)
            .finish()
    }
}

impl TickCore {
    /// Builds a core over `lanes` with `router` deciding placement. The
    /// number of vertices is taken as the maximum owned range end (lanes
    /// partition the vertex space).
    ///
    /// # Panics
    ///
    /// Panics if `lanes` is empty.
    pub fn new(lanes: Vec<LaneConfig>, router: Box<dyn LaneRouter>, opts: ServeOptions) -> Self {
        assert!(!lanes.is_empty(), "need at least one lane");
        let n = lanes.len();
        let nv = lanes.iter().map(|l| l.owned.end).max().unwrap_or(0);
        let step_cost = opts.engine.step_cost();
        // All-raw pre-sample retention: a pre-drawn sampled slot would
        // embed the refill path's RNG into walker movement, and the
        // refill path differs per kernel. With every retained buffer raw,
        // destinations come only from `Walk::sample_for` (walker-private
        // randomness) on either backend, which is what makes
        // cross-backend digests bit-identical.
        let mut round_opts = opts.engine.clone();
        round_opts.low_degree_threshold = u32::MAX;
        let built: Vec<Lane> = lanes
            .into_iter()
            .map(|cfg| Lane {
                quota: opts.engine.walker_pool_quota(
                    &cfg.budget,
                    std::mem::size_of::<ServeWalker>(),
                    u64::MAX,
                ),
                seq: SequentialKernel::new(
                    Arc::clone(&cfg.graph),
                    round_opts.clone(),
                    Arc::clone(&cfg.budget),
                ),
                par: ParallelKernel::new(
                    Arc::clone(&cfg.graph),
                    round_opts.clone(),
                    Arc::clone(&cfg.budget),
                    opts.par_workers,
                ),
                admission: AdmissionController::new(opts.admission.clone()),
                owned: cfg.owned,
            })
            .collect();
        TickCore {
            lanes: built,
            router,
            opts,
            nv,
            step_cost,
            active: Vec::new(),
            inbox: vec![Vec::new(); n],
            outcomes: Vec::new(),
            lane_histograms: vec![BTreeMap::new(); n],
            metrics: RunMetrics::default(),
            rounds: 0,
            total_emigrated: 0,
            total_immigrated: 0,
            streamed: 0,
        }
    }

    /// Serving rounds executed so far.
    pub fn rounds(&self) -> u64 {
        self.rounds
    }

    /// Queries currently in the active set.
    pub fn active_len(&self) -> usize {
        self.active.len()
    }

    /// Queries admitted but not yet activated, across all lanes.
    pub fn pending_len(&self) -> usize {
        self.lanes.iter().map(|l| l.admission.pending_len()).sum()
    }

    /// Every outcome recorded so far, in termination order.
    pub fn outcomes(&self) -> &[QueryOutcome] {
        &self.outcomes
    }

    /// Outcomes recorded since the last call — the realtime driver's
    /// per-tick partial-result stream. Lockstep shells never call this,
    /// so `finish` still reports every outcome.
    pub fn take_new_outcomes(&mut self) -> Vec<QueryOutcome> {
        let fresh = self.outcomes[self.streamed..].to_vec();
        self.streamed = self.outcomes.len();
        fresh
    }

    /// The per-class completion-latency histograms, merged across lanes.
    pub fn merged_histograms(&self) -> BTreeMap<String, LatencyHistogram> {
        let mut histograms: BTreeMap<String, LatencyHistogram> = BTreeMap::new();
        for h in &self.lane_histograms {
            for (k, v) in h {
                histograms.entry(k.clone()).or_default().merge(v);
            }
        }
        histograms
    }

    /// Terminates an active query — outcome, latency histogram sample
    /// (in the query's *home lane's* histogram), and the
    /// `QueryDeadlineMiss`/`QueryCompleted` trace events.
    fn finalize(&mut self, q: ActiveQuery, now: u64, trace: &mut Trace<'_>) {
        let degraded = q.stats.cancelled > 0 || q.stats.issued < q.spec.walkers;
        if q.deadline_missed {
            let deadline_ns = q.spec.deadline_ns.unwrap_or(now);
            let query = q.spec.id;
            trace.emit(|| TraceEvent::QueryDeadlineMiss {
                query,
                deadline_ns,
                at_ns: now,
            });
        }
        let latency = now.saturating_sub(q.spec.arrival_ns);
        self.lane_histograms[q.home as usize]
            .entry(q.class.name().to_string())
            .or_default()
            .record(latency);
        let (query, issued, completed, cancelled) = (
            q.spec.id,
            q.stats.issued,
            q.stats.completed,
            q.stats.cancelled,
        );
        trace.emit(|| TraceEvent::QueryCompleted {
            query,
            issued,
            completed,
            cancelled,
            degraded,
            at_ns: now,
        });
        self.outcomes.push(QueryOutcome {
            id: q.spec.id,
            class: q.class.name().to_string(),
            stats: q.stats,
            latency_ns: Some(latency),
            degraded,
            deadline_missed: q.deadline_missed,
            shed: false,
            retry_after_ns: None,
            digest: q.digest,
        });
    }

    /// Records a shed outcome (admission rejection or backstop drain).
    fn shed(&mut self, q: QuerySpec, retry_after_ns: u64, now: u64, trace: &mut Trace<'_>) {
        let query = q.id;
        trace.emit(|| TraceEvent::QueryShed {
            query,
            retry_after_ns,
            at_ns: now,
        });
        self.outcomes.push(QueryOutcome {
            id: q.id,
            class: q.class.clone(),
            stats: QueryStats {
                id: q.id,
                budget: q.walkers,
                ..QueryStats::default()
            },
            latency_ns: None,
            degraded: false,
            deadline_missed: false,
            shed: true,
            retry_after_ns: Some(retry_after_ns),
            digest: 0,
        });
    }

    /// Records the outcome of a query cancelled before it ever activated
    /// (still queued in admission or in the realtime ingress): zero
    /// walkers issued, so the conservation law holds trivially; flagged
    /// degraded because the admitted budget went unserved. No histogram
    /// sample — the query never ran.
    pub fn cancel_unstarted(&mut self, q: QuerySpec, now_ns: u64, trace: &mut Trace<'_>) {
        let query = q.id;
        trace.emit(|| TraceEvent::QueryCancelled {
            query,
            at_ns: now_ns,
        });
        self.outcomes.push(QueryOutcome {
            id: q.id,
            class: q.class.clone(),
            stats: QueryStats {
                id: q.id,
                budget: q.walkers,
                ..QueryStats::default()
            },
            latency_ns: None,
            degraded: true,
            deadline_missed: false,
            shed: false,
            retry_after_ns: None,
            digest: 0,
        });
    }

    /// Records a shed outcome for a query the driver rejects at its own
    /// ingress (server shutting down, or ingress already drained) — the
    /// realtime counterpart of an admission shed, using lane 0's current
    /// retry-after hint.
    pub fn shed_rejected(&mut self, q: QuerySpec, now_ns: u64, trace: &mut Trace<'_>) {
        let retry_after_ns = self.lanes[0].admission.retry_after();
        self.shed(q, retry_after_ns, now_ns, trace);
    }

    /// Cancels a query by id: an *active* query stops issuing fresh
    /// walkers and drains (in-flight walkers retire through
    /// pre-cancelled slots; it finalizes as a degraded partial at the
    /// next boundary), a *pending* query is removed from its admission
    /// queue and reported via [`cancel_unstarted`](Self::cancel_unstarted).
    /// Returns `false` when the id is unknown here (already finished, or
    /// still in the driver's ingress — the realtime driver then checks
    /// its own queue). Lockstep drivers never call this.
    pub fn cancel(&mut self, id: QueryId, now_ns: u64, trace: &mut Trace<'_>) -> bool {
        if let Some(q) = self.active.iter_mut().find(|q| q.spec.id == id) {
            q.cancel_requested = true;
            q.draining = true;
            trace.emit(|| TraceEvent::QueryCancelled {
                query: id,
                at_ns: now_ns,
            });
            return true;
        }
        for lane in &mut self.lanes {
            if let Some(q) = lane.admission.remove(id) {
                self.cancel_unstarted(q, now_ns, trace);
                return true;
            }
        }
        false
    }

    /// The backstop/shutdown path: purges the handoff queues (each
    /// parked walker counts as re-admitted and immediately cancelled, so
    /// both conservation laws stay exact), finalizes every in-flight
    /// query as a degraded partial, and drains every lane's pending
    /// queue as shed — every admitted query still gets an outcome.
    pub fn abort(&mut self, now_ns: u64, trace: &mut Trace<'_>) {
        self.abort_in(now_ns, trace);
    }

    fn abort_in(&mut self, now: u64, trace: &mut Trace<'_>) {
        let mut inbox = std::mem::take(&mut self.inbox);
        for b in &mut inbox {
            for (qid, _w) in b.drain(..) {
                self.total_immigrated += 1;
                self.metrics.record_walkers_immigrated(1);
                self.active
                    .iter_mut()
                    .find(|q| q.spec.id == qid)
                    .expect("parked walker's query stays active")
                    .stats
                    .cancelled += 1;
            }
        }
        self.inbox = inbox;
        for q in std::mem::take(&mut self.active) {
            self.finalize(q, now, trace);
        }
        for s in 0..self.lanes.len() {
            let retry_after_ns = self.lanes[s].admission.retry_after();
            while let Some(q) = self.lanes[s].admission.next_ready(now, u64::MAX) {
                self.shed(q, retry_after_ns, now, trace);
            }
        }
    }

    /// Runs one tick of the state machine: drain arrivals, activate,
    /// expire, carve, run kernels, fold results and hand off walkers.
    /// Returns [`Tick::Idle`] (without touching the clock) when nothing
    /// is runnable, so the driver owns the waiting policy.
    ///
    /// # Errors
    ///
    /// [`ServeError::Engine`] when a kernel round fails;
    /// [`ServeError::BadQueryClass`] when an admitted query's class spec
    /// does not parse.
    #[allow(clippy::too_many_lines)] // One round-loop, phase by phase.
    pub fn tick(
        &mut self,
        clock: &mut dyn TickClock,
        source: &mut dyn QuerySource,
        trace: &mut Trace<'_>,
    ) -> Result<Tick, ServeError> {
        let n = self.lanes.len();
        let now = clock.now_ns();

        // (1) Drain time-ready arrivals into their home lane's admission
        // controller.
        while let Some(q) = source.next_ready(now, u64::MAX) {
            let home = self.router.home_of(&q);
            match self.lanes[home].admission.offer(q.clone()) {
                Admission::Admitted => {
                    let (query, walkers, deadline_ns) = (q.id, q.walkers, q.deadline_ns);
                    trace.emit(|| TraceEvent::QueryAdmitted {
                        query,
                        walkers,
                        deadline_ns,
                        at_ns: now,
                    });
                }
                Admission::Shed { retry_after_ns } => self.shed(q, retry_after_ns, now, trace),
            }
        }

        // (2) Activate per lane while that lane's walker quota has room
        // (a partially fitting query still activates — it just spans
        // rounds).
        for s in 0..n {
            let mut unissued: u64 = self
                .active
                .iter()
                .filter(|q| q.home as usize == s)
                .map(ActiveQuery::fresh_unissued)
                .sum();
            while unissued < self.lanes[s].quota {
                let room = self.lanes[s].quota - unissued;
                let Some(q) = self.lanes[s].admission.next_ready(now, room) else {
                    break;
                };
                let Some(class) = QueryClass::parse(&q.class) else {
                    return Err(ServeError::BadQueryClass {
                        id: q.id,
                        class: q.class,
                    });
                };
                unissued += q.walkers;
                self.active.push(ActiveQuery {
                    stats: QueryStats {
                        id: q.id,
                        budget: q.walkers,
                        ..QueryStats::default()
                    },
                    class,
                    digest: 0,
                    deadline_missed: false,
                    home: s as u32,
                    draining: false,
                    cancel_requested: false,
                    spec: q,
                });
            }
        }

        // (3) Boundary expiry. A query whose deadline passed (or whose
        // caller cancelled it) starts draining; it finalizes only once no
        // walker is in flight (immediately, when none are).
        let mut i = 0;
        while i < self.active.len() {
            let q = &mut self.active[i];
            let overdue = deadline_passed(q.spec.deadline_ns, now);
            let expired = (overdue || q.cancel_requested) && q.fresh_unissued() > 0;
            if expired {
                q.deadline_missed |= overdue;
                q.draining = true;
            }
            if (expired || q.fresh_unissued() == 0) && q.in_flight() == 0 {
                let q = self.active.remove(i);
                self.finalize(q, now, trace);
            } else {
                i += 1;
            }
        }

        // Global EDF-then-FIFO priority; per-lane carving below preserves
        // this relative order.
        self.active.sort_by_key(|q| {
            (
                q.spec.deadline_ns.unwrap_or(u64::MAX),
                q.spec.arrival_ns,
                q.spec.id,
            )
        });

        // (4) Carve fresh walker chunks per lane, EDF order first, under
        // each lane's per-round cap. Group membership follows the
        // configured backend ([`Backend::routes_to_par`]).
        let mut groups: Vec<[Group; 2]> = (0..n).map(|_| Default::default()).collect();
        let mut caps: Vec<u64> = self
            .lanes
            .iter()
            .map(|l| l.quota.max(1).min(self.opts.round_walkers.max(1)))
            .collect();
        for (idx, q) in self.active.iter().enumerate() {
            let s = q.home as usize;
            if caps[s] == 0 {
                continue;
            }
            let count = q.fresh_unissued().min(caps[s]);
            if count == 0 {
                continue;
            }
            caps[s] -= count;
            let on_par = self
                .opts
                .backend
                .routes_to_par(q.spec.deadline_ns.is_some());
            let g = &mut groups[s][usize::from(on_par)];
            let slot = g.entries.len() as u32;
            let allowance = q
                .spec
                .deadline_ns
                .map(|d| d.saturating_sub(now) / self.step_cost.max(1));
            g.entries.push((
                q.class,
                q.spec.walk_length,
                allowance,
                query_stream_seed(self.opts.seed, q.spec.id),
            ));
            g.chunks.push((slot, q.stats.issued, count));
            g.charged.push((idx, slot, count));
            g.slot_of_query.push((q.spec.id, slot));
        }

        let idle = groups
            .iter()
            .all(|gs| gs.iter().all(|g| g.entries.is_empty()))
            && self.inbox.iter().all(|b| b.is_empty());
        if idle {
            // Nothing runnable anywhere: the driver decides whether to
            // jump to the next arrival, wait, or stop.
            debug_assert!(self.active.is_empty(), "active queries always have work");
            return Ok(Tick::Idle {
                next_arrival_ns: source.next_pending_at(now),
            });
        }

        self.rounds += 1;
        if self.rounds > self.opts.max_rounds {
            self.rounds -= 1;
            self.abort_in(now, trace);
            return Ok(Tick::Exhausted);
        }

        // (4b) Re-admit handed-off walkers on their owning lane: each
        // resumes ahead of the fresh chunks with vertex, step count, and
        // private RNG stream intact. Draining queries get pre-cancelled
        // slots so their walkers retire on contact.
        for (s, group_pair) in groups.iter_mut().enumerate() {
            let arrivals = std::mem::take(&mut self.inbox[s]);
            if arrivals.is_empty() {
                continue;
            }
            self.total_immigrated += arrivals.len() as u64;
            self.metrics
                .record_walkers_immigrated(arrivals.len() as u64);
            for (qid, mut w) in arrivals {
                let idx = self
                    .active
                    .iter()
                    .position(|q| q.spec.id == qid)
                    .expect("in-flight walker's query stays active");
                let on_par = self
                    .opts
                    .backend
                    .routes_to_par(self.active[idx].spec.deadline_ns.is_some());
                let g = &mut group_pair[usize::from(on_par)];
                let slot = match g.slot_of_query.iter().find(|&&(id, _)| id == qid) {
                    Some(&(_, slot)) => slot,
                    None => {
                        let q = &self.active[idx];
                        let slot = g.entries.len() as u32;
                        let allowance = q
                            .spec
                            .deadline_ns
                            .map(|d| d.saturating_sub(now) / self.step_cost.max(1));
                        g.entries.push((
                            q.class,
                            q.spec.walk_length,
                            allowance,
                            query_stream_seed(self.opts.seed, qid),
                        ));
                        g.charged.push((idx, slot, 0));
                        g.slot_of_query.push((qid, slot));
                        if q.draining {
                            g.precancel.push(slot);
                        }
                        slot
                    }
                };
                w.slot = slot;
                g.resumed.push(w);
            }
        }

        // (5) Run every lane's round. The shared clock advances by the
        // slowest lane (lanes are parallel in the model); the admission
        // controllers all observe the *global* stall rate — the shared
        // backpressure view.
        let seed = self
            .opts
            .seed
            .wrapping_add(self.rounds.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let mut max_advance = 0u64;
        let mut round_stalls = 0u64;
        let mut round_steps = 0u64;
        type Ran = (
            usize,
            Arc<QueryTable>,
            Vec<(usize, u32, u64)>,
            Arc<RoundApp>,
        );
        let mut ran: Vec<Ran> = Vec::new();
        for (s, lane_groups) in groups.into_iter().enumerate() {
            let mut lane_advance = 0u64;
            for (par, g) in lane_groups.into_iter().enumerate() {
                if g.entries.is_empty() {
                    continue;
                }
                let table = Arc::new(QueryTable::new(g.entries));
                for &slot in &g.precancel {
                    table.cancel(slot);
                }
                let app = Arc::new(RoundApp::sharded(
                    Arc::clone(&table),
                    g.chunks,
                    self.nv,
                    self.lanes[s].owned.clone(),
                    g.resumed,
                ));
                let out = if par == 1 {
                    self.lanes[s].par.run_round(Arc::clone(&app), seed)?
                } else {
                    self.lanes[s].seq.run_round(Arc::clone(&app), seed)?
                };
                lane_advance += out.advance_ns;
                round_stalls += out.metrics.presample_stalls + out.metrics.pool_stalls;
                round_steps += out.metrics.steps;
                self.metrics.merge(&out.metrics);
                ran.push((s, table, g.charged, app));
            }
            max_advance = max_advance.max(lane_advance);
        }
        clock.advance_round(max_advance);
        for lane in &mut self.lanes {
            lane.admission.observe_stall_rate(round_stalls, round_steps);
        }

        // (6a) Fold per-slot results back into each query.
        let after = clock.now_ns();
        let mut candidates: Vec<usize> = Vec::new();
        for (_s, table, charged, _app) in &ran {
            for &(idx, slot, count) in charged {
                let q = &mut self.active[idx];
                q.stats.issued += count;
                q.stats.completed += table.completed_walkers(slot);
                q.stats.cancelled += table.cancelled_walkers(slot);
                q.digest = q.digest.wrapping_add(table.digest(slot));
                let timed_out = table.is_cancelled(slot);
                let missed = deadline_passed(q.spec.deadline_ns, after);
                if timed_out || missed {
                    q.deadline_missed = true;
                    q.draining = true;
                }
                candidates.push(idx);
            }
        }

        // (6b) Drain emigrants into per-destination handoff queues, on a
        // deterministic key so parallel retirement order never leaks into
        // re-admission order.
        for (s, table, charged, app) in &ran {
            let mut slot_to_qidx = vec![usize::MAX; table.len()];
            for &(idx, slot, _) in charged {
                slot_to_qidx[slot as usize] = idx;
            }
            let mut ems = app.take_emigrants();
            if ems.is_empty() {
                continue;
            }
            ems.sort_by_key(|w| {
                (
                    self.active[slot_to_qidx[w.slot as usize]].spec.id,
                    w.rng,
                    w.step,
                    w.at,
                )
            });
            self.total_emigrated += ems.len() as u64;
            self.metrics.record_walkers_emigrated(ems.len() as u64);
            let mut per_dest = vec![0u64; n];
            for w in ems {
                let qid = self.active[slot_to_qidx[w.slot as usize]].spec.id;
                let dest = self.router.lane_of(w.at);
                per_dest[dest] += 1;
                self.inbox[dest].push((qid, w));
            }
            for (dest, &walkers) in per_dest.iter().enumerate() {
                if walkers == 0 {
                    continue;
                }
                let (from_shard, to_shard) = (*s as u32, dest as u32);
                trace.emit(|| TraceEvent::ShardHandoff {
                    from_shard,
                    to_shard,
                    walkers,
                    at_ns: after,
                });
            }
        }
        if cfg!(debug_assertions) {
            let in_flight: u64 = self.inbox.iter().map(|b| b.len() as u64).sum();
            audit_handoffs(self.total_emigrated, self.total_immigrated, in_flight).assert_clean();
        }

        // (6c) Terminate finished queries: budget fully issued (or
        // surrendered by draining) and nothing in flight.
        let mut done: Vec<usize> = candidates
            .into_iter()
            .filter(|&idx| {
                let q = &self.active[idx];
                (q.draining || q.fresh_unissued() == 0) && q.in_flight() == 0
            })
            .collect();
        done.sort_unstable_by(|a, b| b.cmp(a));
        done.dedup();
        for idx in done {
            let q = self.active.remove(idx);
            self.finalize(q, after, trace);
        }

        Ok(Tick::Ran)
    }

    /// Closes the run and builds the merged report. `end_ns` is the
    /// driver clock's final reading. In debug builds the run-end
    /// handoff-conservation and per-query conservation laws are asserted.
    pub fn finish(mut self, end_ns: u64) -> TickReport {
        // The serving layer reports modeled time only: the inner rounds'
        // host wall time would make otherwise bit-identical replays (and
        // the bench artifacts built from them) differ run to run. The
        // bench/CLI boundary re-stamps `wall_ns` with its own measurement.
        self.metrics.set_wall_ns(0);
        if cfg!(debug_assertions) {
            // Run-end conservation: every emigrated walker was re-admitted.
            audit_handoffs(self.total_emigrated, self.total_immigrated, 0).assert_clean();
        }
        let histograms = self.merged_histograms();
        let report = ServeReport {
            end_ns,
            outcomes: self.outcomes,
            histograms,
            metrics: self.metrics,
            rounds: self.rounds,
        };
        if cfg!(debug_assertions) {
            audit_queries(&report.query_stats()).assert_clean();
        }
        TickReport {
            report,
            lane_histograms: self.lane_histograms,
            walkers_emigrated: self.total_emigrated,
            walkers_immigrated: self.total_immigrated,
        }
    }
}
