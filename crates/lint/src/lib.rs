//! nosw-lint: workspace-native static analysis for NosWalker.
//!
//! PR 1 made the engine's conservation laws *observable* at runtime
//! (`noswalker_core::audit`). This crate makes the coding conventions that
//! keep those laws true *enforceable* at the source level, with a
//! dependency-free, hand-rolled token scanner (no `syn`, builds offline).
//!
//! Run it over the workspace with:
//!
//! ```text
//! cargo run -p nosw-lint -- --check
//! ```
//!
//! The linter is a two-phase framework: phase 1 lexes every file
//! ([`tokenizer`]), classifies test scopes and comment registers
//! (`analysis`), and builds a workspace symbol index (`index`: functions,
//! call sites, atomic orderings, lock guards, `RunMetrics` fields);
//! phase 2 runs the pluggable rule passes (`passes`). See [`rules`] for
//! the rule catalogue (L1–L12) and `crates/lint/nosw-lint.allow` for the
//! justified-exception register.

#![forbid(unsafe_code)]

mod analysis;
mod index;
mod passes;
pub mod rules;
pub mod tokenizer;

use std::fmt;
use std::path::{Path, PathBuf};

/// One source file handed to the linter: a workspace-relative path (used
/// for rule scoping) and its full text.
#[derive(Debug, Clone)]
pub struct SourceFile {
    /// Workspace-relative path with `/` separators, e.g.
    /// `crates/core/src/engine.rs`.
    pub path: String,
    /// Full file contents.
    pub text: String,
}

/// One rule violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Rule identifier: `L1`–`L12`, or `ALLOW` for suppression bookkeeping.
    pub rule: &'static str,
    /// Workspace-relative path of the offending file.
    pub path: String,
    /// 1-based line number.
    pub line: u32,
    /// What is wrong.
    pub message: String,
    /// How to fix it.
    pub hint: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{} [{}] {} (fix: {})",
            self.path, self.line, self.rule, self.message, self.hint
        )
    }
}

/// One registered exception: `rule path count`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AllowEntry {
    /// Rule the suppressions apply to.
    pub rule: String,
    /// Workspace-relative file path.
    pub path: String,
    /// Exact number of annotations the file must carry.
    pub count: u32,
}

/// The justified-exception register (`crates/lint/nosw-lint.allow`).
///
/// Entries are `RULE PATH COUNT` lines; `#` starts a comment. Counts are
/// exact in both directions: a file with more *or fewer* annotations than
/// registered fails the run, so silent drift is impossible.
#[derive(Debug, Clone, Default)]
pub struct Allowlist {
    /// Registered exceptions.
    pub entries: Vec<AllowEntry>,
}

impl Allowlist {
    /// An empty register (no exceptions tolerated).
    pub fn empty() -> Self {
        Allowlist::default()
    }

    /// Parses the `RULE PATH COUNT` line format.
    pub fn parse(text: &str) -> Result<Self, String> {
        let mut entries = Vec::new();
        for (idx, raw) in text.lines().enumerate() {
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            let parts: Vec<&str> = line.split_whitespace().collect();
            let [rule, path, count] = parts.as_slice() else {
                return Err(format!(
                    "allowlist line {}: expected `RULE PATH COUNT`, got {raw:?}",
                    idx + 1
                ));
            };
            let count: u32 = count
                .parse()
                .map_err(|_| format!("allowlist line {}: bad count {count:?}", idx + 1))?;
            entries.push(AllowEntry {
                rule: (*rule).to_string(),
                path: (*path).to_string(),
                count,
            });
        }
        Ok(Allowlist { entries })
    }
}

/// Lints an explicit file set against an allowlist. Pure function of its
/// inputs — this is the entry point tests use with fixture sources.
pub fn lint_files(files: &[SourceFile], allow: &Allowlist) -> Vec<Violation> {
    rules::run(files, allow)
}

/// The result of scanning a workspace tree.
#[derive(Debug)]
pub struct Report {
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
    /// Violations found, sorted by path then line.
    pub violations: Vec<Violation>,
    /// Canonical allowlist content matching the annotations actually
    /// present in the sources (what `--prune-allow` writes).
    pub suggested_allow: String,
}

impl Report {
    /// Renders the report as machine-readable JSON (hand-rolled — the
    /// crate stays dependency-free).
    pub fn to_json(&self) -> String {
        let mut s = String::from("{\n");
        s.push_str(&format!("  \"files_scanned\": {},\n", self.files_scanned));
        s.push_str("  \"violations\": [");
        for (i, v) in self.violations.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!(
                "\n    {{\"rule\": {}, \"path\": {}, \"line\": {}, \"message\": {}, \
                 \"hint\": {}}}",
                json_str(v.rule),
                json_str(&v.path),
                v.line,
                json_str(&v.message),
                json_str(&v.hint)
            ));
        }
        if !self.violations.is_empty() {
            s.push_str("\n  ");
        }
        s.push_str("]\n}\n");
        s
    }
}

/// Escapes a string as a JSON string literal.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Walks `root` (the workspace checkout), lints every `.rs` file under
/// `crates/`, `src/` and `tests/`, and cross-checks the allowlist at
/// `crates/lint/nosw-lint.allow`.
pub fn lint_workspace(root: &Path) -> Result<Report, String> {
    let mut files = Vec::new();
    for sub in ["crates", "src", "tests"] {
        let dir = root.join(sub);
        if dir.is_dir() {
            collect_rs(root, &dir, &mut files)?;
        }
    }
    if files.is_empty() {
        return Err(format!(
            "no .rs files found under {} — is --root pointing at the workspace?",
            root.display()
        ));
    }
    files.sort_by(|a, b| a.path.cmp(&b.path));
    let allow_path = root.join("crates/lint/nosw-lint.allow");
    let allow = if allow_path.is_file() {
        let text = std::fs::read_to_string(&allow_path)
            .map_err(|e| format!("reading {}: {e}", allow_path.display()))?;
        Allowlist::parse(&text)?
    } else {
        Allowlist::empty()
    };
    let files_scanned = files.len();
    let output = rules::run_full(&files, &allow);
    Ok(Report {
        files_scanned,
        violations: output.violations,
        suggested_allow: output.suggested_allow,
    })
}

fn collect_rs(root: &Path, dir: &Path, out: &mut Vec<SourceFile>) -> Result<(), String> {
    let entries = std::fs::read_dir(dir).map_err(|e| format!("reading {}: {e}", dir.display()))?;
    let mut paths: Vec<PathBuf> = entries.filter_map(|e| e.ok().map(|e| e.path())).collect();
    paths.sort();
    for p in paths {
        let name = p.file_name().and_then(|n| n.to_str()).unwrap_or("");
        if p.is_dir() {
            // `fixtures` holds deliberate violations; `target`/`vendor`
            // hold code we do not own.
            if name == "fixtures" || name == "target" || name == "vendor" || name.starts_with('.') {
                continue;
            }
            collect_rs(root, &p, out)?;
        } else if name.ends_with(".rs") {
            let text =
                std::fs::read_to_string(&p).map_err(|e| format!("reading {}: {e}", p.display()))?;
            let rel = p
                .strip_prefix(root)
                .unwrap_or(&p)
                .to_string_lossy()
                .replace('\\', "/");
            out.push(SourceFile { path: rel, text });
        }
    }
    Ok(())
}
