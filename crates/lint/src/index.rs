//! Phase-1 workspace symbol index.
//!
//! Built once from every [`Analysis`] before any pass runs, the index
//! gives rule passes a cross-file view the raw token streams cannot:
//! which functions exist, what each one calls (a name-based call graph,
//! deliberately over-approximate), where `RunMetrics` declares its fields
//! and with what types, where `TraceEvent` lives, every
//! `Ordering::<X>` site, and every `let`-bound lock guard.
//!
//! Everything here is syntactic — no type resolution, no macro
//! expansion. Passes that consume the index (L9 reachability, L10
//! atomics, L11 locks, L12 audit coverage) are written to be sound
//! against that over-approximation: a false edge in the call graph can
//! only widen the set of functions a determinism rule inspects, never
//! hide one.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use crate::analysis::Analysis;

/// Identifiers that look like calls (`ident (`) but are control-flow or
/// binding keywords.
const KEYWORDS: &[&str] = &[
    "if", "else", "while", "for", "loop", "match", "return", "fn", "let", "in", "as", "move",
    "unsafe", "ref", "mut", "pub", "use", "impl", "where", "struct", "enum", "trait", "type",
    "const", "static", "crate", "super", "self", "Self", "dyn", "async", "await", "continue",
    "break",
];

/// One function item: name, location, body token span, and callee names.
#[derive(Debug)]
pub(crate) struct FnInfo {
    pub name: String,
    /// Index into the analyses slice.
    pub file: usize,
    /// Line of the `fn` keyword.
    pub line: u32,
    /// Token index range of the body, inclusive of both braces.
    pub body: (usize, usize),
    /// Names this body appears to call (free functions and methods alike).
    pub calls: Vec<String>,
}

/// One `RunMetrics` field with its declared type tokens.
#[derive(Debug)]
pub(crate) struct MetricsField {
    pub name: String,
    pub line: u32,
    /// The type as a token sequence, e.g. `["u64"]` or `["Option", "<", "u64", ">"]`.
    pub ty: Vec<String>,
}

/// One `Ordering::<X>` use site outside test code.
#[derive(Debug)]
pub(crate) struct OrderingSite {
    pub file: usize,
    pub line: u32,
    /// The ordering name: `Relaxed`, `Acquire`, `Release`, `AcqRel`, `SeqCst`.
    pub which: String,
}

/// One `let`-bound Mutex guard (`let g = …lock()…;`) outside test code.
#[derive(Debug)]
pub(crate) struct GuardSite {
    pub file: usize,
    pub name: String,
    pub line: u32,
    /// Token index just past the binding's `;` — where the live range starts.
    pub start: usize,
}

/// The `TraceEvent` definition: where it lives and its variants.
#[derive(Debug)]
pub(crate) struct TraceInfo {
    pub def_path: String,
    pub variants: Vec<(String, u32)>,
}

/// The workspace symbol index handed to every pass.
pub(crate) struct SymbolIndex {
    pub fns: Vec<FnInfo>,
    /// Function indices grouped by name (names are not unique).
    pub by_name: BTreeMap<String, Vec<usize>>,
    /// `RunMetrics` fields parsed from the metrics module, with types.
    pub metrics_fields: Vec<MetricsField>,
    /// Path of the file that defines `RunMetrics`, when present.
    pub metrics_path: Option<String>,
    pub trace: Option<TraceInfo>,
    pub ordering_sites: Vec<OrderingSite>,
    pub guards: Vec<GuardSite>,
}

impl SymbolIndex {
    pub fn build(files: &[Analysis]) -> Self {
        let mut fns = Vec::new();
        let mut ordering_sites = Vec::new();
        let mut guards = Vec::new();
        for (fi, a) in files.iter().enumerate() {
            collect_fns(fi, a, &mut fns);
            collect_ordering_sites(fi, a, &mut ordering_sites);
            collect_guards(fi, a, &mut guards);
        }
        let mut by_name: BTreeMap<String, Vec<usize>> = BTreeMap::new();
        for (i, f) in fns.iter().enumerate() {
            by_name.entry(f.name.clone()).or_default().push(i);
        }
        let (metrics_fields, metrics_path) = metrics_fields(files);
        SymbolIndex {
            fns,
            by_name,
            metrics_fields,
            metrics_path,
            trace: trace_info(files),
            ordering_sites,
            guards,
        }
    }

    /// The set of function indices reachable from `roots` through the
    /// name-based call graph, restricted to functions whose file satisfies
    /// `in_scope`. Includes the roots themselves.
    pub fn reachable(
        &self,
        files: &[Analysis],
        roots: &[usize],
        in_scope: impl Fn(&str) -> bool,
    ) -> BTreeSet<usize> {
        let mut seen: BTreeSet<usize> = roots.iter().copied().collect();
        let mut queue: VecDeque<usize> = roots.iter().copied().collect();
        while let Some(f) = queue.pop_front() {
            for callee in &self.fns[f].calls {
                let Some(cands) = self.by_name.get(callee) else {
                    continue;
                };
                for &g in cands {
                    if !in_scope(&files[self.fns[g].file].path) {
                        continue;
                    }
                    if seen.insert(g) {
                        queue.push_back(g);
                    }
                }
            }
        }
        seen
    }
}

/// Finds every `fn` item (including nested and trait-default bodies) and
/// records its body span plus callee names.
fn collect_fns(fi: usize, a: &Analysis, out: &mut Vec<FnInfo>) {
    let toks = &a.lexed.tokens;
    for i in 0..toks.len() {
        // `fn` followed by a name; skips `fn(..)` pointer types.
        if a.t(i) != "fn" || !a.is_ident(i + 1) {
            continue;
        }
        let name = toks[i + 1].text.clone();
        // Scan the signature for the body `{` (or `;` for declarations).
        let mut k = i + 2;
        let mut open = None;
        let mut paren = 0i32;
        while k < toks.len() {
            match a.t(k) {
                "(" | "[" => paren += 1,
                ")" | "]" => paren -= 1,
                ";" if paren == 0 => break,
                "{" if paren == 0 => {
                    open = Some(k);
                    break;
                }
                _ => {}
            }
            k += 1;
        }
        let Some(open) = open else {
            continue;
        };
        let mut depth = 1i32;
        let mut m = open + 1;
        while m < toks.len() && depth > 0 {
            match a.t(m) {
                "{" => depth += 1,
                "}" => depth -= 1,
                _ => {}
            }
            m += 1;
        }
        let close = m.saturating_sub(1);
        let mut calls = Vec::new();
        for (j, tok) in toks.iter().enumerate().take(close).skip(open + 1) {
            if a.is_ident(j)
                && a.t(j + 1) == "("
                && a.t(j.wrapping_sub(1)) != "fn"
                && !KEYWORDS.contains(&a.t(j))
            {
                calls.push(tok.text.clone());
            }
        }
        calls.sort();
        calls.dedup();
        out.push(FnInfo {
            name,
            file: fi,
            line: toks[i].line,
            body: (open, close),
            calls,
        });
    }
}

/// Records every non-test `Ordering::<X>` site.
fn collect_ordering_sites(fi: usize, a: &Analysis, out: &mut Vec<OrderingSite>) {
    let toks = &a.lexed.tokens;
    for i in 0..toks.len() {
        if a.t(i) == "Ordering" && a.t(i + 1) == "::" && a.is_ident(i + 2) {
            let line = toks[i].line;
            if a.is_test_line(line) {
                continue;
            }
            out.push(OrderingSite {
                file: fi,
                line,
                which: toks[i + 2].text.clone(),
            });
        }
    }
}

/// Tail tokens allowed after the `lock()`/`try_lock()` call for the
/// binding to still hold the guard (error adapters, not value extraction).
const GUARD_TAILS: &[&str] = &["?", ".", "ok", "unwrap", "expect", "(", ")", "\"\""];

/// Records every non-test `let g = …lock()…;` binding that holds a guard.
/// Chains that keep going past the lock call (`.lock().clone()`) extract a
/// value from a temporary guard and are not bindings of the guard itself.
fn collect_guards(fi: usize, a: &Analysis, out: &mut Vec<GuardSite>) {
    let toks = &a.lexed.tokens;
    for i in 0..toks.len() {
        if a.t(i) != "let" {
            continue;
        }
        let mut j = i + 1;
        if a.t(j) == "mut" {
            j += 1;
        }
        if !a.is_ident(j) || a.t(j) == "_" || a.t(j + 1) != "=" {
            continue;
        }
        let line = toks[i].line;
        if a.is_test_line(line) {
            continue;
        }
        // Find the statement-ending `;` at relative depth 0.
        let mut depth = 0i32;
        let mut end = None;
        let mut k = j + 2;
        while k < toks.len() {
            match a.t(k) {
                "(" | "[" | "{" => depth += 1,
                ")" | "]" | "}" => depth -= 1,
                ";" if depth == 0 => {
                    end = Some(k);
                    break;
                }
                _ => {}
            }
            k += 1;
        }
        let Some(end) = end else {
            continue;
        };
        // Locate a `.lock(` / `.try_lock(` call in the initializer.
        let mut lock_close = None;
        for m in j + 2..end {
            if a.t(m) == "."
                && (a.t(m + 1) == "lock" || a.t(m + 1) == "try_lock")
                && a.t(m + 2) == "("
            {
                // The call is always `()`, so the close follows the open.
                lock_close = Some(m + 3);
            }
        }
        let Some(lock_close) = lock_close else {
            continue;
        };
        // Everything after the call up to `;` must be a guard-preserving
        // tail; any other continuation extracts a value instead.
        if (lock_close + 1..end).any(|m| !GUARD_TAILS.contains(&a.t(m))) {
            continue;
        }
        out.push(GuardSite {
            file: fi,
            name: toks[j].text.clone(),
            line,
            start: end + 1,
        });
    }
}

/// Extracts the fields of `struct RunMetrics` (names, lines, type tokens)
/// from the scanned metrics module.
fn metrics_fields(files: &[Analysis]) -> (Vec<MetricsField>, Option<String>) {
    let Some(a) = files
        .iter()
        .find(|a| a.path.ends_with("core/src/metrics.rs"))
    else {
        return (Vec::new(), None);
    };
    let toks = &a.lexed.tokens;
    let Some(start) = (0..toks.len()).find(|&i| a.t(i) == "struct" && a.t(i + 1) == "RunMetrics")
    else {
        return (Vec::new(), None);
    };
    let Some(open) = (start..toks.len()).find(|&i| a.t(i) == "{") else {
        return (Vec::new(), None);
    };
    let mut fields = Vec::new();
    let mut depth = 1i32;
    let mut k = open + 1;
    while k < toks.len() && depth > 0 {
        match a.t(k) {
            "{" => depth += 1,
            "}" => depth -= 1,
            _ => {
                if depth == 1 && a.is_ident(k) && a.t(k + 1) == ":" {
                    // Collect type tokens to the field-separating `,` (or
                    // the struct's `}`), honoring `<…>` nesting.
                    let mut ty = Vec::new();
                    let mut angle = 0i32;
                    let mut m = k + 2;
                    while m < toks.len() {
                        match a.t(m) {
                            "<" => angle += 1,
                            ">" => angle -= 1,
                            ">>" => angle -= 2,
                            "," | "}" if angle <= 0 => break,
                            _ => {}
                        }
                        ty.push(toks[m].text.clone());
                        m += 1;
                    }
                    fields.push(MetricsField {
                        name: toks[k].text.clone(),
                        line: toks[k].line,
                        ty,
                    });
                    k = m;
                    continue;
                }
            }
        }
        k += 1;
    }
    (fields, Some(a.path.clone()))
}

fn trace_info(files: &[Analysis]) -> Option<TraceInfo> {
    for a in files {
        let toks = &a.lexed.tokens;
        let Some(start) = (0..toks.len()).find(|&i| a.t(i) == "enum" && a.t(i + 1) == "TraceEvent")
        else {
            continue;
        };
        let Some(open) = (start..toks.len()).find(|&i| a.t(i) == "{") else {
            continue;
        };
        let mut variants = Vec::new();
        let mut depth = 1i32;
        let mut sep = true;
        let mut k = open + 1;
        while k < toks.len() && depth > 0 {
            match a.t(k) {
                "{" => {
                    depth += 1;
                    sep = false;
                }
                "}" => depth -= 1,
                "," => {
                    if depth == 1 {
                        sep = true;
                    }
                }
                "#" if depth == 1 && a.t(k + 1) == "[" => {
                    // Skip attribute tokens so they don't clear `sep`.
                    let mut d = 1i32;
                    let mut m = k + 2;
                    while m < toks.len() && d > 0 {
                        match a.t(m) {
                            "[" => d += 1,
                            "]" => d -= 1,
                            _ => {}
                        }
                        m += 1;
                    }
                    k = m;
                    continue;
                }
                _ => {
                    if depth == 1 {
                        if sep && a.is_ident(k) {
                            variants.push((toks[k].text.clone(), toks[k].line));
                        }
                        sep = false;
                    }
                }
            }
            k += 1;
        }
        return Some(TraceInfo {
            def_path: a.path.clone(),
            variants,
        });
    }
    None
}
