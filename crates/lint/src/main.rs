//! CLI for nosw-lint: `cargo run -p nosw-lint -- --check`.

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "\
nosw-lint: static analysis enforcing NosWalker's engine invariants

USAGE:
    cargo run -p nosw-lint -- [--check] [--root <dir>] [--format <text|json>] [--prune-allow]

OPTIONS:
    --check          Lint the workspace (default behavior; flag kept for CI clarity)
    --root <dir>     Workspace root to scan (default: current directory)
    --format <fmt>   Output format: text (default) or json
    --prune-allow    Rewrite crates/lint/nosw-lint.allow to match the
                     annotations actually present, then re-lint
    -h, --help       Show this help

Exit status: 0 clean, 1 violations found, 2 usage or I/O error.";

#[derive(PartialEq)]
enum Format {
    Text,
    Json,
}

fn main() -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut format = Format::Text;
    let mut prune = false;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--check" => {}
            "--prune-allow" => prune = true,
            "--root" => match args.next() {
                Some(dir) => root = PathBuf::from(dir),
                None => {
                    eprintln!("nosw-lint: --root needs a directory\n{USAGE}");
                    return ExitCode::from(2);
                }
            },
            "--format" => match args.next().as_deref() {
                Some("text") => format = Format::Text,
                Some("json") => format = Format::Json,
                other => {
                    eprintln!("nosw-lint: --format needs `text` or `json`, got {other:?}\n{USAGE}");
                    return ExitCode::from(2);
                }
            },
            "-h" | "--help" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("nosw-lint: unknown argument {other:?}\n{USAGE}");
                return ExitCode::from(2);
            }
        }
    }
    if prune {
        // First pass derives the canonical register, then the normal run
        // below re-lints against what was written.
        match nosw_lint::lint_workspace(&root) {
            Ok(report) => {
                let allow_path = root.join("crates/lint/nosw-lint.allow");
                if let Err(e) = std::fs::write(&allow_path, &report.suggested_allow) {
                    eprintln!("nosw-lint: writing {}: {e}", allow_path.display());
                    return ExitCode::from(2);
                }
                eprintln!("nosw-lint: rewrote {}", allow_path.display());
            }
            Err(e) => {
                eprintln!("nosw-lint: error: {e}");
                return ExitCode::from(2);
            }
        }
    }
    match nosw_lint::lint_workspace(&root) {
        Ok(report) => {
            if format == Format::Json {
                print!("{}", report.to_json());
            } else if report.violations.is_empty() {
                println!(
                    "nosw-lint: clean — {} files, 0 violations",
                    report.files_scanned
                );
            } else {
                for v in &report.violations {
                    println!("{v}");
                }
            }
            if report.violations.is_empty() {
                ExitCode::SUCCESS
            } else {
                eprintln!(
                    "nosw-lint: {} violation(s) across {} files",
                    report.violations.len(),
                    report.files_scanned
                );
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("nosw-lint: error: {e}");
            ExitCode::from(2)
        }
    }
}
