//! CLI for nosw-lint: `cargo run -p nosw-lint -- --check`.

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "\
nosw-lint: static analysis enforcing NosWalker's engine invariants

USAGE:
    cargo run -p nosw-lint -- [--check] [--root <dir>]

OPTIONS:
    --check        Lint the workspace (default behavior; flag kept for CI clarity)
    --root <dir>   Workspace root to scan (default: current directory)
    -h, --help     Show this help

Exit status: 0 clean, 1 violations found, 2 usage or I/O error.";

fn main() -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--check" => {}
            "--root" => match args.next() {
                Some(dir) => root = PathBuf::from(dir),
                None => {
                    eprintln!("nosw-lint: --root needs a directory\n{USAGE}");
                    return ExitCode::from(2);
                }
            },
            "-h" | "--help" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("nosw-lint: unknown argument {other:?}\n{USAGE}");
                return ExitCode::from(2);
            }
        }
    }
    match nosw_lint::lint_workspace(&root) {
        Ok(report) if report.violations.is_empty() => {
            println!(
                "nosw-lint: clean — {} files, 0 violations",
                report.files_scanned
            );
            ExitCode::SUCCESS
        }
        Ok(report) => {
            for v in &report.violations {
                println!("{v}");
            }
            eprintln!(
                "nosw-lint: {} violation(s) across {} files",
                report.violations.len(),
                report.files_scanned
            );
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("nosw-lint: error: {e}");
            ExitCode::from(2)
        }
    }
}
