//! Phase-1 per-file analysis: lexing, test-scope classification, and the
//! comment-anchored registers (suppression annotations and the atomic
//! protocol comments consumed by L10).
//!
//! An [`Analysis`] is the unit every pass works from: the token stream
//! with line numbers, which lines are test-only, and which comments carry
//! lint-relevant markers. Cross-file structure (functions, call sites,
//! atomic ops, lock guards) lives one layer up in [`crate::index`].

use std::collections::BTreeSet;

use crate::tokenizer::{lex, Kind, Lexed, Token};
use crate::SourceFile;

/// One suppression annotation found in a comment.
#[derive(Debug)]
pub(crate) struct Annotation {
    /// Rule the suppression applies to (`L1`…`L12`).
    pub rule: String,
    /// Line the comment is on.
    pub line: u32,
    /// The code line this annotation covers (same line if it carries code,
    /// otherwise the next line that does).
    pub target: Option<u32>,
    /// Whether a justification follows the marker.
    pub reason_ok: bool,
    /// Set once a hit consumed the suppression.
    pub used: bool,
}

/// One atomic protocol comment (the register behind L10): a comment whose
/// text begins with the ordering marker, documenting why an
/// Acquire/Release/SeqCst site is correct and what it pairs with.
#[derive(Debug)]
pub(crate) struct OrderingComment {
    /// Line the comment starts on.
    pub line: u32,
    /// The code line the comment anchors to (resolved like annotations).
    pub target: Option<u32>,
}

/// Per-file lexed view plus derived line classifications.
pub(crate) struct Analysis {
    pub path: String,
    pub lexed: Lexed,
    /// Inclusive line ranges under `#[cfg(test)]` / `#[test]` items.
    pub test_ranges: Vec<(u32, u32)>,
    /// True for integration-test files (`tests/` directories).
    pub whole_file_test: bool,
    pub annotations: Vec<Annotation>,
    pub ordering_comments: Vec<OrderingComment>,
}

impl Analysis {
    pub fn new(file: &SourceFile) -> Self {
        let path = file.path.replace('\\', "/");
        let lexed = lex(&file.text);
        let code_lines: BTreeSet<u32> = lexed.tokens.iter().map(|t| t.line).collect();
        let test_ranges = test_ranges(&lexed.tokens);
        let whole_file_test = path.starts_with("tests/") || path.contains("/tests/");
        let annotations = parse_annotations(&lexed, &code_lines);
        let ordering_comments = parse_ordering_comments(&lexed, &code_lines);
        Analysis {
            path,
            lexed,
            test_ranges,
            whole_file_test,
            annotations,
            ordering_comments,
        }
    }

    pub fn is_test_line(&self, line: u32) -> bool {
        self.whole_file_test
            || self
                .test_ranges
                .iter()
                .any(|&(a, b)| a <= line && line <= b)
    }

    /// Token text at `i`, or "" past the end.
    pub fn t(&self, i: usize) -> &str {
        self.lexed.tokens.get(i).map_or("", |t| t.text.as_str())
    }

    pub fn is_ident(&self, i: usize) -> bool {
        self.lexed
            .tokens
            .get(i)
            .is_some_and(|t| t.kind == Kind::Ident)
    }
}

/// The annotation marker. Assembled so the lint's own sources never contain
/// the literal marker at the start of a comment.
pub(crate) fn marker() -> String {
    format!("{}-{}(", "LINT", "ALLOW")
}

/// The atomic protocol marker (`ORDERING` followed by a colon), assembled
/// for the same reason as [`marker`].
pub(crate) fn ordering_marker() -> String {
    format!("{}{}:", "ORDER", "ING")
}

fn parse_annotations(lexed: &Lexed, code_lines: &BTreeSet<u32>) -> Vec<Annotation> {
    let marker = marker();
    let mut out = Vec::new();
    for c in &lexed.comments {
        // Strip doc-comment sigils so `///`-style annotations also anchor.
        let t = c.text.trim_start_matches(['/', '!', '*']).trim_start();
        let Some(rest) = t.strip_prefix(marker.as_str()) else {
            continue;
        };
        let Some(close) = rest.find(')') else {
            continue;
        };
        let rule = rest[..close].trim().to_string();
        let after = rest[close + 1..].trim_start();
        let reason = after.strip_prefix(':').unwrap_or(after).trim();
        out.push(Annotation {
            rule,
            line: c.line,
            target: anchor(c.line, code_lines),
            reason_ok: !reason.is_empty(),
            used: false,
        });
    }
    out
}

fn parse_ordering_comments(lexed: &Lexed, code_lines: &BTreeSet<u32>) -> Vec<OrderingComment> {
    let marker = ordering_marker();
    let mut out = Vec::new();
    for c in &lexed.comments {
        let t = c.text.trim_start_matches(['/', '!', '*']).trim_start();
        if !t.starts_with(marker.as_str()) {
            continue;
        }
        out.push(OrderingComment {
            line: c.line,
            target: anchor(c.line, code_lines),
        });
    }
    out
}

/// The code line a comment on `line` anchors to: the same line if it
/// carries code, otherwise the next line that does.
fn anchor(line: u32, code_lines: &BTreeSet<u32>) -> Option<u32> {
    if code_lines.contains(&line) {
        Some(line)
    } else {
        code_lines.range(line + 1..).next().copied()
    }
}

/// Computes inclusive line ranges covered by `#[test]`-like or
/// `#[cfg(test)]` attributes (the attribute line through the closing brace
/// of the item body).
fn test_ranges(toks: &[Token]) -> Vec<(u32, u32)> {
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < toks.len() {
        if toks[i].text != "#" || toks.get(i + 1).map(|t| t.text.as_str()) != Some("[") {
            i += 1;
            continue;
        }
        // Find the matching `]`.
        let mut j = i + 2;
        let mut depth = 1i32;
        while j < toks.len() && depth > 0 {
            match toks[j].text.as_str() {
                "[" => depth += 1,
                "]" => depth -= 1,
                _ => {}
            }
            j += 1;
        }
        let content: Vec<&str> = toks[i + 2..j.saturating_sub(1)]
            .iter()
            .map(|t| t.text.as_str())
            .collect();
        let is_test = content.first().is_some_and(|f| f.ends_with("test"))
            || (content.first() == Some(&"cfg") && content.contains(&"test"));
        if is_test {
            // Scan forward to the item body `{` (stopping at `;` for
            // bodiless items like `#[cfg(test)] use …;`).
            let mut k = j;
            let mut open = None;
            while k < toks.len() {
                match toks[k].text.as_str() {
                    ";" => break,
                    "{" => {
                        open = Some(k);
                        break;
                    }
                    _ => {}
                }
                k += 1;
            }
            if let Some(open) = open {
                let mut d = 1i32;
                let mut m = open + 1;
                while m < toks.len() && d > 0 {
                    match toks[m].text.as_str() {
                        "{" => d += 1,
                        "}" => d -= 1,
                        _ => {}
                    }
                    m += 1;
                }
                let end = toks[m.saturating_sub(1)].line;
                out.push((toks[i].line, end));
            }
        }
        i = j;
    }
    out
}
