//! A small hand-rolled Rust tokenizer.
//!
//! The lint rules only need identifier/punctuation sequences with line
//! numbers, plus the comment text (for `SAFETY:` and suppression
//! annotations). The lexer is therefore deliberately lossy — string,
//! char and numeric literals collapse to placeholder tokens — but it is
//! exact about the things that matter: nothing inside a string, char
//! literal or comment ever becomes a code token, block comments nest,
//! raw/byte strings are honored, and lifetimes are distinguished from
//! char literals.

/// Kind of a lexed token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Kind {
    /// Identifier or keyword.
    Ident,
    /// Operator or delimiter (multi-character operators are one token).
    Punct,
    /// String/char/numeric literal (text is a placeholder).
    Literal,
    /// A lifetime such as `'a` (text is the name without the quote).
    Lifetime,
}

/// One code token with its 1-based source line.
#[derive(Debug, Clone)]
pub struct Token {
    /// Token text (placeholder for literals).
    pub text: String,
    /// Token kind.
    pub kind: Kind,
    /// 1-based line the token starts on.
    pub line: u32,
}

/// One comment line: line comments verbatim, block comments split per line.
#[derive(Debug, Clone)]
pub struct Comment {
    /// 1-based line the comment text is on.
    pub line: u32,
    /// Text after `//` (or the slice of a block comment on this line).
    pub text: String,
}

/// The result of lexing one file.
#[derive(Debug, Default)]
pub struct Lexed {
    /// Code tokens in source order.
    pub tokens: Vec<Token>,
    /// Comment lines in source order.
    pub comments: Vec<Comment>,
}

const OPS3: &[&str] = &["<<=", ">>=", "..=", "..."];
const OPS2: &[&str] = &[
    "::", "->", "=>", "==", "!=", "<=", ">=", "&&", "||", "<<", ">>", "+=", "-=", "*=", "/=", "%=",
    "&=", "|=", "^=", "..",
];

/// Lexes `src` into tokens and comments.
pub fn lex(src: &str) -> Lexed {
    let c: Vec<char> = src.chars().collect();
    let n = c.len();
    let mut out = Lexed::default();
    let mut i = 0usize;
    let mut line = 1u32;

    while i < n {
        let ch = c[i];
        if ch == '\n' {
            line += 1;
            i += 1;
            continue;
        }
        if ch.is_whitespace() {
            i += 1;
            continue;
        }
        // Line comment.
        if ch == '/' && i + 1 < n && c[i + 1] == '/' {
            let start = i + 2;
            let mut j = start;
            while j < n && c[j] != '\n' {
                j += 1;
            }
            out.comments.push(Comment {
                line,
                text: c[start..j].iter().collect(),
            });
            i = j;
            continue;
        }
        // Block comment (nesting honored).
        if ch == '/' && i + 1 < n && c[i + 1] == '*' {
            let mut depth = 1u32;
            let mut j = i + 2;
            let mut buf = String::new();
            while j < n && depth > 0 {
                if c[j] == '/' && j + 1 < n && c[j + 1] == '*' {
                    depth += 1;
                    buf.push_str("/*");
                    j += 2;
                } else if c[j] == '*' && j + 1 < n && c[j + 1] == '/' {
                    depth -= 1;
                    if depth > 0 {
                        buf.push_str("*/");
                    }
                    j += 2;
                } else if c[j] == '\n' {
                    out.comments.push(Comment {
                        line,
                        text: std::mem::take(&mut buf),
                    });
                    line += 1;
                    j += 1;
                } else {
                    buf.push(c[j]);
                    j += 1;
                }
            }
            if !buf.is_empty() {
                out.comments.push(Comment { line, text: buf });
            }
            i = j;
            continue;
        }
        // Plain string literal.
        if ch == '"' {
            let tok_line = line;
            i = skip_string(&c, i, &mut line);
            out.tokens.push(Token {
                text: "\"\"".into(),
                kind: Kind::Literal,
                line: tok_line,
            });
            continue;
        }
        // Char literal or lifetime.
        if ch == '\'' {
            let tok_line = line;
            if i + 1 < n && c[i + 1] == '\\' {
                // Escaped char literal: consume the escaped character first
                // (so `'\\'` and `'\''` close on the *next* quote, not an
                // escaped one), then run to the closing quote for the longer
                // `'\x41'` / `'\u{…}'` forms.
                let mut j = i + 2;
                if j < n {
                    j += 1;
                }
                while j < n && c[j] != '\'' {
                    if c[j] == '\n' {
                        line += 1;
                    }
                    j += 1;
                }
                i = (j + 1).min(n);
                out.tokens.push(Token {
                    text: "''".into(),
                    kind: Kind::Literal,
                    line: tok_line,
                });
                continue;
            }
            if i + 1 < n && (c[i + 1] == '_' || c[i + 1].is_alphanumeric()) {
                let mut j = i + 1;
                while j < n && (c[j] == '_' || c[j].is_alphanumeric()) {
                    j += 1;
                }
                if j == i + 2 && j < n && c[j] == '\'' {
                    // Exactly one character then a quote: 'x'.
                    out.tokens.push(Token {
                        text: "''".into(),
                        kind: Kind::Literal,
                        line: tok_line,
                    });
                    i = j + 1;
                } else {
                    // A lifetime: 'a, 'static, '_.
                    out.tokens.push(Token {
                        text: c[i + 1..j].iter().collect(),
                        kind: Kind::Lifetime,
                        line: tok_line,
                    });
                    i = j;
                }
                continue;
            }
            if i + 2 < n && c[i + 2] == '\'' {
                // Punctuation char literal like '('.
                if c[i + 1] == '\n' {
                    line += 1;
                }
                out.tokens.push(Token {
                    text: "''".into(),
                    kind: Kind::Literal,
                    line: tok_line,
                });
                i += 3;
                continue;
            }
            i += 1;
            continue;
        }
        // Identifier, keyword, or a string-literal prefix.
        if ch == '_' || ch.is_alphabetic() {
            let start = i;
            let mut j = i;
            while j < n && (c[j] == '_' || c[j].is_alphanumeric()) {
                j += 1;
            }
            let word: String = c[start..j].iter().collect();
            let tok_line = line;
            if (word == "r" || word == "br") && j < n && (c[j] == '"' || c[j] == '#') {
                // Raw string (r"...", r#"..."#) or raw identifier (r#foo).
                if word == "r"
                    && c[j] == '#'
                    && j + 1 < n
                    && (c[j + 1] == '_' || c[j + 1].is_alphabetic())
                {
                    let mut k = j + 1;
                    while k < n && (c[k] == '_' || c[k].is_alphanumeric()) {
                        k += 1;
                    }
                    out.tokens.push(Token {
                        text: c[j + 1..k].iter().collect(),
                        kind: Kind::Ident,
                        line: tok_line,
                    });
                    i = k;
                    continue;
                }
                i = skip_raw_string(&c, j, &mut line);
                out.tokens.push(Token {
                    text: "\"\"".into(),
                    kind: Kind::Literal,
                    line: tok_line,
                });
                continue;
            }
            if word == "b" && j < n && c[j] == '"' {
                i = skip_string(&c, j, &mut line);
                out.tokens.push(Token {
                    text: "\"\"".into(),
                    kind: Kind::Literal,
                    line: tok_line,
                });
                continue;
            }
            if word == "b" && j < n && c[j] == '\'' {
                // Byte char literal b'x'. As with char literals, an escape
                // consumes the escaped character before the quote scan so
                // `b'\''` and `b'\\'` terminate correctly.
                let mut k = j + 1;
                if k < n && c[k] == '\\' {
                    k += 2;
                } else if k < n {
                    k += 1;
                }
                while k < n && c[k] != '\'' {
                    k += 1;
                }
                out.tokens.push(Token {
                    text: "''".into(),
                    kind: Kind::Literal,
                    line: tok_line,
                });
                i = (k + 1).min(n);
                continue;
            }
            out.tokens.push(Token {
                text: word,
                kind: Kind::Ident,
                line: tok_line,
            });
            i = j;
            continue;
        }
        // Numeric literal (suffixes and hex digits fold in; no dots, so
        // ranges like `0..n` stay three tokens).
        if ch.is_ascii_digit() {
            let mut j = i;
            while j < n && (c[j] == '_' || c[j].is_alphanumeric()) {
                j += 1;
            }
            out.tokens.push(Token {
                text: "0".into(),
                kind: Kind::Literal,
                line,
            });
            i = j;
            continue;
        }
        // Operators: maximal munch.
        let mut matched = false;
        for ops in [OPS3, OPS2] {
            let len = ops[0].len();
            if i + len <= n {
                let s: String = c[i..i + len].iter().collect();
                if ops.contains(&s.as_str()) {
                    out.tokens.push(Token {
                        text: s,
                        kind: Kind::Punct,
                        line,
                    });
                    i += len;
                    matched = true;
                    break;
                }
            }
        }
        if matched {
            continue;
        }
        out.tokens.push(Token {
            text: ch.to_string(),
            kind: Kind::Punct,
            line,
        });
        i += 1;
    }
    out
}

fn skip_string(c: &[char], start: usize, line: &mut u32) -> usize {
    let mut j = start + 1;
    while j < c.len() {
        match c[j] {
            '\\' => j += 2,
            '"' => return j + 1,
            '\n' => {
                *line += 1;
                j += 1;
            }
            _ => j += 1,
        }
    }
    j
}

fn skip_raw_string(c: &[char], mut j: usize, line: &mut u32) -> usize {
    let mut hashes = 0usize;
    while j < c.len() && c[j] == '#' {
        hashes += 1;
        j += 1;
    }
    j += 1; // opening quote
    while j < c.len() {
        if c[j] == '\n' {
            *line += 1;
            j += 1;
            continue;
        }
        if c[j] == '"' {
            let mut k = 0usize;
            while k < hashes && j + 1 + k < c.len() && c[j + 1 + k] == '#' {
                k += 1;
            }
            if k == hashes {
                return j + 1 + hashes;
            }
        }
        j += 1;
    }
    j
}

#[cfg(test)]
mod tests {
    use super::*;

    fn texts(src: &str) -> Vec<String> {
        lex(src).tokens.into_iter().map(|t| t.text).collect()
    }

    #[test]
    fn idents_and_ops() {
        assert_eq!(texts("a += b;"), vec!["a", "+=", "b", ";"]);
        assert_eq!(texts("x == y"), vec!["x", "==", "y"]);
        assert_eq!(texts("p::q.r"), vec!["p", "::", "q", ".", "r"]);
    }

    #[test]
    fn strings_do_not_leak_tokens() {
        assert_eq!(texts(r#"f("a.b = c")"#), vec!["f", "(", "\"\"", ")"]);
        assert_eq!(texts("r#\"x.unwrap()\"#"), vec!["\"\""]);
        assert_eq!(texts("b\"bytes\""), vec!["\"\""]);
    }

    #[test]
    fn comments_are_captured_not_tokenized() {
        let l = lex("let x = 1; // trailing note\n/* block\nspans */ y");
        assert_eq!(l.comments.len(), 3);
        assert_eq!(l.comments[0].text, " trailing note");
        assert_eq!(l.comments[1].line, 2);
        let toks: Vec<_> = l.tokens.iter().map(|t| t.text.as_str()).collect();
        assert_eq!(toks, vec!["let", "x", "=", "0", ";", "y"]);
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let l = lex("fn f<'a>(x: &'a str) { let c = 'x'; }");
        let lifetimes: Vec<_> = l
            .tokens
            .iter()
            .filter(|t| t.kind == Kind::Lifetime)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(lifetimes, vec!["a", "a"]);
        let lits = l.tokens.iter().filter(|t| t.kind == Kind::Literal).count();
        assert_eq!(lits, 1);
    }

    #[test]
    fn escaped_char_and_unicode() {
        assert_eq!(
            texts(r"let c = '\u{1F600}';"),
            vec!["let", "c", "=", "''", ";"]
        );
        assert_eq!(texts(r"let q = '\'';"), vec!["let", "q", "=", "''", ";"]);
    }

    #[test]
    fn lines_advance_inside_literals() {
        let l = lex("let s = \"a\nb\";\nnext");
        let next = l.tokens.iter().find(|t| t.text == "next").unwrap();
        assert_eq!(next.line, 3);
    }

    #[test]
    fn nested_block_comments() {
        let toks = texts("/* outer /* inner */ still comment */ code");
        assert_eq!(toks, vec!["code"]);
    }

    #[test]
    fn escaped_backslash_char_literal_does_not_swallow_code() {
        // Regression: `'\\'` used to step past its own closing quote and
        // eat everything up to the next quote in the file.
        assert_eq!(
            texts(r"let c = '\\'; x.unwrap()"),
            vec!["let", "c", "=", "''", ";", "x", ".", "unwrap", "(", ")"]
        );
        assert_eq!(
            texts(r"m('\n', '\t')"),
            vec!["m", "(", "''", ",", "''", ")"]
        );
    }

    #[test]
    fn byte_char_escapes_terminate_on_the_real_quote() {
        assert_eq!(
            texts(r"let b = b'\''; y += 1;"),
            vec!["let", "b", "=", "''", ";", "y", "+=", "0", ";"]
        );
        assert_eq!(
            texts(r"let b = b'\\'; z"),
            vec!["let", "b", "=", "''", ";", "z"]
        );
    }

    #[test]
    fn multi_hash_raw_strings() {
        // The `"#` inside must not close an `r##"…"##` string.
        assert_eq!(texts("r##\"has \"# inside\"## tail"), vec!["\"\"", "tail"]);
        assert_eq!(texts("br#\"bytes\"# x"), vec!["\"\"", "x"]);
    }

    #[test]
    fn deeply_nested_block_comments() {
        assert_eq!(texts("/* a /* b /* c */ d */ e */ tail"), vec!["tail"]);
    }

    #[test]
    fn ranges_are_not_floats() {
        assert_eq!(texts("0..n"), vec!["0", "..", "n"]);
        assert_eq!(texts("1..=5"), vec!["0", "..=", "0"]);
    }
}
