//! The nosw-lint rule driver: phase 1 builds per-file analyses and the
//! workspace [`SymbolIndex`](crate::index), phase 2 runs the pluggable
//! passes in [`crate::passes`] and applies suppression/allowlist
//! bookkeeping to their raw hits.
//!
//! | rule | invariant |
//! |---|---|
//! | L1 | `RunMetrics` fields are only written through the tracked helpers in `crates/core/src/metrics.rs` |
//! | L2 | every `TraceEvent` variant has an emit site (engine/baselines/serve/shard) and a handling site (its defining module) |
//! | L3 | wall-clock reads (`Instant::now`, `SystemTime::now`) only in `clock.rs`, `crates/bench`, `crates/cli` |
//! | L4 | threads are only spawned in `threaded.rs` / `parallel.rs` / the realtime driver (`crates/serve/src/realtime.rs`) |
//! | L5 | no `unwrap`/`expect`/`panic!` family in library code of core/storage/graph |
//! | L6 | every `unsafe` is preceded by a `SAFETY:` comment; unsafe-free crates `#![forbid(unsafe_code)]` |
//! | L7 | `std::sync::atomic` types in `crates/core/src` only in `metrics.rs`, `presample.rs`, `parallel.rs` |
//! | L8 | no `thread::sleep` or raw clock reads in `crates/serve/src`, and `WallTimer` only in `realtime.rs` — lockstep serving uses modeled time |
//! | L9 | no ambient/time-seeded randomness and no `HashMap`/`HashSet` in functions reachable from a digest or trace-emit path in core/serve/shard |
//! | L10 | `Ordering::Relaxed` only on sanctioned counter modules; Acquire/Release/SeqCst sites carry registered protocol comments |
//! | L11 | `let`-bound Mutex guards in parallel.rs/serve drop within their binding block — never across a loop or a loader call |
//! | L12 | every `RunMetrics` counter is referenced by a conservation law in `audit.rs` |
//!
//! Rules are *self-configuring*: the `RunMetrics` field set, the
//! `TraceEvent` variant list, the call graph, ordering sites and lock
//! guards are all parsed out of the scanned sources, so adding a field,
//! variant, or function automatically extends enforcement.
//!
//! Every hit is suppressible with an annotation comment (the `LINT`
//! `ALLOW` marker with the rule in parentheses and a justification after
//! a colon), cross-checked two-way against
//! `crates/lint/nosw-lint.allow`. The same register also carries the
//! `ORDERING` protocol-comment counts consumed by L10.

use std::collections::{BTreeMap, BTreeSet};

use crate::analysis::Analysis;
use crate::index::SymbolIndex;
use crate::passes::{self, PassCx};
use crate::{Allowlist, SourceFile, Violation};

/// The full result of a rule run: the violations plus the canonical
/// allowlist derived from the annotations actually present (what
/// `--prune-allow` writes).
#[derive(Debug)]
pub struct RunOutput {
    /// Violations found, sorted by path, line, rule.
    pub violations: Vec<Violation>,
    /// Canonical `RULE PATH COUNT` register content matching the sources.
    pub suggested_allow: String,
}

/// Runs every rule over the lexed files and cross-checks the allowlist.
pub fn run(files: &[SourceFile], allow: &Allowlist) -> Vec<Violation> {
    run_full(files, allow).violations
}

/// Runs every rule and also returns the canonical allowlist content.
pub fn run_full(files: &[SourceFile], allow: &Allowlist) -> RunOutput {
    let mut analyses: Vec<Analysis> = files.iter().map(Analysis::new).collect();
    analyses.sort_by(|a, b| a.path.cmp(&b.path));
    let index = SymbolIndex::build(&analyses);

    // Phase 2: run the pass registry over the shared context.
    let mut hits = Vec::new();
    {
        let cx = PassCx {
            files: &analyses,
            index: &index,
        };
        for pass in passes::all() {
            let before = hits.len();
            pass.run(&cx, &mut hits);
            debug_assert!(
                hits[before..].iter().all(|h| h.rule == pass.id()),
                "pass {} emitted a hit under a foreign rule id",
                pass.id()
            );
        }
    }

    // Suppression: an annotation for the same rule anchored to the hit
    // line consumes the hit.
    let mut out: Vec<Violation> = Vec::new();
    for h in hits {
        let a = &mut analyses[h.file];
        let suppressed = a
            .annotations
            .iter_mut()
            .find(|an| an.rule == h.rule && an.target == Some(h.line));
        if let Some(an) = suppressed {
            an.used = true;
            continue;
        }
        out.push(Violation {
            rule: h.rule,
            path: a.path.clone(),
            line: h.line,
            message: h.message,
            hint: h.hint,
        });
    }

    // Annotation hygiene + the two-way allowlist cross-check. The counts
    // map carries both suppression annotations (per rule) and L10's
    // ordering-protocol comments (under the ORDERING key).
    let mut counts: BTreeMap<(String, String), u32> = BTreeMap::new();
    for a in &analyses {
        for an in &a.annotations {
            *counts.entry((an.rule.clone(), a.path.clone())).or_default() += 1;
            if !an.reason_ok {
                out.push(Violation {
                    rule: "ALLOW",
                    path: a.path.clone(),
                    line: an.line,
                    message: "suppression annotation has no justification".into(),
                    hint: "write the reason after the colon; unexplained suppressions \
                           are not accepted"
                        .into(),
                });
            }
            if !an.used {
                out.push(Violation {
                    rule: "ALLOW",
                    path: a.path.clone(),
                    line: an.line,
                    message: format!(
                        "dangling suppression: no {} violation on the annotated line",
                        an.rule
                    ),
                    hint: "delete the annotation or move it directly above the line it \
                           justifies"
                        .into(),
                });
            }
        }
        if passes::atomics::l10_scope(&a.path) {
            for _c in &a.ordering_comments {
                *counts
                    .entry(("ORDERING".to_string(), a.path.clone()))
                    .or_default() += 1;
            }
        }
    }
    let scanned: BTreeSet<&str> = analyses.iter().map(|a| a.path.as_str()).collect();
    for e in &allow.entries {
        if !scanned.contains(e.path.as_str()) {
            out.push(Violation {
                rule: "ALLOW",
                path: e.path.clone(),
                line: 1,
                message: format!(
                    "stale allowlist entry: `{}` is not part of the scanned source tree",
                    e.path
                ),
                hint: "the file was moved or deleted; remove the entry, or run \
                       `cargo run -p nosw-lint -- --prune-allow` to rewrite the register"
                    .into(),
            });
            continue;
        }
        let actual = counts
            .get(&(e.rule.clone(), e.path.clone()))
            .copied()
            .unwrap_or(0);
        if actual != e.count {
            out.push(Violation {
                rule: "ALLOW",
                path: e.path.clone(),
                line: 1,
                message: format!(
                    "allowlist records {} {} suppression(s) for this file but the \
                     source carries {actual}",
                    e.count, e.rule
                ),
                hint: "update crates/lint/nosw-lint.allow to match the annotations \
                       actually present, or run `cargo run -p nosw-lint -- --prune-allow`"
                    .into(),
            });
        }
    }
    for ((rule, path), count) in &counts {
        let registered = allow
            .entries
            .iter()
            .any(|e| &e.rule == rule && &e.path == path);
        if !registered {
            let what = if rule == "ORDERING" {
                format!("{count} ordering protocol comment(s) in this file are")
            } else {
                format!("{count} {rule} suppression(s) in this file are")
            };
            out.push(Violation {
                rule: "ALLOW",
                path: path.clone(),
                line: 1,
                message: format!("{what} not registered in the allowlist"),
                hint: "add a `RULE PATH COUNT` line to crates/lint/nosw-lint.allow".into(),
            });
        }
    }

    let mut suggested_allow = String::from(
        "# Justified exceptions, one `RULE PATH COUNT` per line.\n\
         # Counts are exact both ways; regenerate with `--prune-allow`.\n",
    );
    for ((rule, path), count) in &counts {
        suggested_allow.push_str(&format!("{rule} {path} {count}\n"));
    }

    out.sort_by(|x, y| (&x.path, x.line, x.rule).cmp(&(&y.path, y.line, y.rule)));
    RunOutput {
        violations: out,
        suggested_allow,
    }
}
