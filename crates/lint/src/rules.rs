//! The eight nosw-lint rules (L1–L8) plus the suppression-annotation
//! bookkeeping that backs the `LINT` `ALLOW` mechanism.
//!
//! | rule | invariant |
//! |---|---|
//! | L1 | `RunMetrics` fields are only written through the tracked helpers in `crates/core/src/metrics.rs` |
//! | L2 | every `TraceEvent` variant has an emit site (engine/baselines/serve) and a handling site (its defining module) |
//! | L3 | wall-clock reads (`Instant::now`, `SystemTime::now`) only in `clock.rs`, `crates/bench`, `crates/cli` |
//! | L4 | threads are only spawned in `threaded.rs` / `parallel.rs` |
//! | L5 | no `unwrap`/`expect`/`panic!` family in library code of core/storage/graph |
//! | L6 | every `unsafe` is preceded by a `SAFETY:` comment; unsafe-free crates `#![forbid(unsafe_code)]` |
//! | L7 | `std::sync::atomic` types in `crates/core/src` only in `metrics.rs`, `presample.rs`, `parallel.rs` |
//! | L8 | no `thread::sleep` or raw clock reads in `crates/serve/src` — serving hot paths use modeled time (`clock.rs` / `WallTimer`) |
//!
//! Rules are *self-configuring*: the `RunMetrics` field set and the
//! `TraceEvent` variant list are parsed out of the scanned sources, so
//! adding a field or variant automatically extends enforcement.

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};

use crate::tokenizer::{lex, Kind, Lexed, Token};
use crate::{Allowlist, SourceFile, Violation};

/// Methods that mutate an atomic counter (treated as writes under L1).
const ATOMIC_WRITES: &[&str] = &["store", "fetch_add", "fetch_sub", "fetch_max", "fetch_min"];
/// Compound and plain assignment operators.
const ASSIGN_OPS: &[&str] = &[
    "=", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "<<=", ">>=",
];
/// Panicking macros covered by L5 (`assert!` is deliberately excluded:
/// contract assertions are part of the documented library API).
const PANIC_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];
/// The `std::sync::atomic` type names gated by L7: concurrent state in the
/// core crate is confined to the modules whose invariants are documented
/// and audited (metrics counters, the published pre-sample pool, the
/// parallel runner).
const ATOMIC_TYPES: &[&str] = &[
    "AtomicBool",
    "AtomicU8",
    "AtomicU16",
    "AtomicU32",
    "AtomicU64",
    "AtomicUsize",
    "AtomicI8",
    "AtomicI16",
    "AtomicI32",
    "AtomicI64",
    "AtomicIsize",
    "AtomicPtr",
];

/// One suppression annotation found in a comment.
#[derive(Debug)]
struct Annotation {
    rule: String,
    line: u32,
    /// The code line this annotation covers (same line if it carries code,
    /// otherwise the next line that does).
    target: Option<u32>,
    reason_ok: bool,
    used: bool,
}

/// Per-file lexed view plus derived line classifications.
struct Analysis {
    path: String,
    lexed: Lexed,
    /// Inclusive line ranges under `#[cfg(test)]` / `#[test]` items.
    test_ranges: Vec<(u32, u32)>,
    /// True for integration-test files (`tests/` directories).
    whole_file_test: bool,
    annotations: Vec<Annotation>,
}

impl Analysis {
    fn new(file: &SourceFile) -> Self {
        let path = file.path.replace('\\', "/");
        let lexed = lex(&file.text);
        let code_lines: BTreeSet<u32> = lexed.tokens.iter().map(|t| t.line).collect();
        let test_ranges = test_ranges(&lexed.tokens);
        let whole_file_test = path.starts_with("tests/") || path.contains("/tests/");
        let annotations = parse_annotations(&lexed, &code_lines);
        Analysis {
            path,
            lexed,
            test_ranges,
            whole_file_test,
            annotations,
        }
    }

    fn is_test_line(&self, line: u32) -> bool {
        self.whole_file_test
            || self
                .test_ranges
                .iter()
                .any(|&(a, b)| a <= line && line <= b)
    }

    /// Token text at `i`, or "" past the end.
    fn t(&self, i: usize) -> &str {
        self.lexed.tokens.get(i).map_or("", |t| t.text.as_str())
    }

    fn is_ident(&self, i: usize) -> bool {
        self.lexed
            .tokens
            .get(i)
            .is_some_and(|t| t.kind == Kind::Ident)
    }
}

/// The annotation marker. Assembled so the lint's own sources never contain
/// the literal marker at the start of a comment.
fn marker() -> String {
    format!("{}-{}(", "LINT", "ALLOW")
}

fn parse_annotations(lexed: &Lexed, code_lines: &BTreeSet<u32>) -> Vec<Annotation> {
    let marker = marker();
    let mut out = Vec::new();
    for c in &lexed.comments {
        // Strip doc-comment sigils so `///`-style annotations also anchor.
        let t = c.text.trim_start_matches(['/', '!', '*']).trim_start();
        let Some(rest) = t.strip_prefix(marker.as_str()) else {
            continue;
        };
        let Some(close) = rest.find(')') else {
            continue;
        };
        let rule = rest[..close].trim().to_string();
        let after = rest[close + 1..].trim_start();
        let reason = after.strip_prefix(':').unwrap_or(after).trim();
        let target = if code_lines.contains(&c.line) {
            Some(c.line)
        } else {
            code_lines.range(c.line + 1..).next().copied()
        };
        out.push(Annotation {
            rule,
            line: c.line,
            target,
            reason_ok: !reason.is_empty(),
            used: false,
        });
    }
    out
}

/// Computes inclusive line ranges covered by `#[test]`-like or
/// `#[cfg(test)]` attributes (the attribute line through the closing brace
/// of the item body).
fn test_ranges(toks: &[Token]) -> Vec<(u32, u32)> {
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < toks.len() {
        if toks[i].text != "#" || toks.get(i + 1).map(|t| t.text.as_str()) != Some("[") {
            i += 1;
            continue;
        }
        // Find the matching `]`.
        let mut j = i + 2;
        let mut depth = 1i32;
        while j < toks.len() && depth > 0 {
            match toks[j].text.as_str() {
                "[" => depth += 1,
                "]" => depth -= 1,
                _ => {}
            }
            j += 1;
        }
        let content: Vec<&str> = toks[i + 2..j.saturating_sub(1)]
            .iter()
            .map(|t| t.text.as_str())
            .collect();
        let is_test = content.first().is_some_and(|f| f.ends_with("test"))
            || (content.first() == Some(&"cfg") && content.contains(&"test"));
        if is_test {
            // Scan forward to the item body `{` (stopping at `;` for
            // bodiless items like `#[cfg(test)] use …;`).
            let mut k = j;
            let mut open = None;
            while k < toks.len() {
                match toks[k].text.as_str() {
                    ";" => break,
                    "{" => {
                        open = Some(k);
                        break;
                    }
                    _ => {}
                }
                k += 1;
            }
            if let Some(open) = open {
                let mut d = 1i32;
                let mut m = open + 1;
                while m < toks.len() && d > 0 {
                    match toks[m].text.as_str() {
                        "{" => d += 1,
                        "}" => d -= 1,
                        _ => {}
                    }
                    m += 1;
                }
                let end = toks[m.saturating_sub(1)].line;
                out.push((toks[i].line, end));
            }
        }
        i = j;
    }
    out
}

/// Extracts the public field names of `struct RunMetrics` from the scanned
/// metrics module.
fn metrics_fields(files: &[Analysis]) -> HashSet<String> {
    let mut fields = HashSet::new();
    let Some(a) = files
        .iter()
        .find(|a| a.path.ends_with("core/src/metrics.rs"))
    else {
        return fields;
    };
    let toks = &a.lexed.tokens;
    let Some(start) = (0..toks.len()).find(|&i| a.t(i) == "struct" && a.t(i + 1) == "RunMetrics")
    else {
        return fields;
    };
    let Some(open) = (start..toks.len()).find(|&i| a.t(i) == "{") else {
        return fields;
    };
    let mut depth = 1i32;
    let mut k = open + 1;
    while k < toks.len() && depth > 0 {
        match a.t(k) {
            "{" => depth += 1,
            "}" => depth -= 1,
            _ => {
                if depth == 1 && a.is_ident(k) && a.t(k + 1) == ":" {
                    fields.insert(toks[k].text.clone());
                }
            }
        }
        k += 1;
    }
    fields
}

/// The `TraceEvent` definition: where it lives and its variants.
struct TraceInfo {
    def_path: String,
    variants: Vec<(String, u32)>,
}

fn trace_info(files: &[Analysis]) -> Option<TraceInfo> {
    for a in files {
        let toks = &a.lexed.tokens;
        let Some(start) = (0..toks.len()).find(|&i| a.t(i) == "enum" && a.t(i + 1) == "TraceEvent")
        else {
            continue;
        };
        let Some(open) = (start..toks.len()).find(|&i| a.t(i) == "{") else {
            continue;
        };
        let mut variants = Vec::new();
        let mut depth = 1i32;
        let mut sep = true;
        let mut k = open + 1;
        while k < toks.len() && depth > 0 {
            match a.t(k) {
                "{" => {
                    depth += 1;
                    sep = false;
                }
                "}" => depth -= 1,
                "," => {
                    if depth == 1 {
                        sep = true;
                    }
                }
                "#" if depth == 1 && a.t(k + 1) == "[" => {
                    // Skip attribute tokens so they don't clear `sep`.
                    let mut d = 1i32;
                    let mut m = k + 2;
                    while m < toks.len() && d > 0 {
                        match a.t(m) {
                            "[" => d += 1,
                            "]" => d -= 1,
                            _ => {}
                        }
                        m += 1;
                    }
                    k = m;
                    continue;
                }
                _ => {
                    if depth == 1 {
                        if sep && a.is_ident(k) {
                            variants.push((toks[k].text.clone(), toks[k].line));
                        }
                        sep = false;
                    }
                }
            }
            k += 1;
        }
        return Some(TraceInfo {
            def_path: a.path.clone(),
            variants,
        });
    }
    None
}

/// One raw rule hit before suppression is applied.
struct Hit {
    rule: &'static str,
    line: u32,
    message: String,
    hint: String,
}

fn in_l5_scope(path: &str) -> bool {
    path.starts_with("crates/core/src/")
        || path.starts_with("crates/storage/src/")
        || path.starts_with("crates/graph/src/")
}

fn l3_exempt(path: &str) -> bool {
    path.ends_with("/clock.rs")
        || path.starts_with("crates/bench/")
        || path.starts_with("crates/cli/")
        // The serving crate is policed by the stricter L8 instead, so a raw
        // clock read there fires exactly one rule.
        || path.starts_with("crates/serve/")
}

fn l8_scope(path: &str) -> bool {
    path.starts_with("crates/serve/src/")
}

fn l4_exempt(path: &str) -> bool {
    path.ends_with("/threaded.rs") || path.ends_with("/parallel.rs")
}

fn l7_exempt(path: &str) -> bool {
    !path.starts_with("crates/core/src/")
        || path.ends_with("/metrics.rs")
        || path.ends_with("/presample.rs")
        || path.ends_with("/parallel.rs")
}

fn collect_hits(a: &Analysis, fields: &HashSet<String>) -> Vec<Hit> {
    let mut hits = Vec::new();
    let toks = &a.lexed.tokens;
    let metrics_module = a.path.ends_with("core/src/metrics.rs");
    // L1 only bites in files that handle `RunMetrics` at all; a field named
    // `steps` on some unrelated walker struct is not a metrics write.
    let l1_active = !metrics_module && toks.iter().any(|t| t.text == "RunMetrics");
    let comment_lines: BTreeSet<u32> = a.lexed.comments.iter().map(|c| c.line).collect();
    for i in 0..toks.len() {
        let line = toks[i].line;
        if a.is_test_line(line) {
            continue;
        }
        // L1: direct writes to RunMetrics fields outside the metrics module.
        if l1_active && a.t(i) == "." && a.is_ident(i + 1) && fields.contains(a.t(i + 1)) {
            let field = a.t(i + 1).to_string();
            if ASSIGN_OPS.contains(&a.t(i + 2)) {
                hits.push(Hit {
                    rule: "L1",
                    line: toks[i + 1].line,
                    message: format!("direct write to RunMetrics field `{field}`"),
                    hint: format!(
                        "route the update through a tracked RunMetrics helper \
                         (record_*/set_*) in crates/core/src/metrics.rs instead of \
                         assigning `{field}` here"
                    ),
                });
            } else if a.t(i + 2) == "." && ATOMIC_WRITES.contains(&a.t(i + 3)) && a.t(i + 4) == "("
            {
                hits.push(Hit {
                    rule: "L1",
                    line: toks[i + 1].line,
                    message: format!("atomic write to shared metrics field `{field}`"),
                    hint: "mutate shared counters through SharedMetrics/LocalCounters in \
                           crates/core/src/metrics.rs"
                        .into(),
                });
            }
        }
        // L3: raw wall-clock reads outside the sanctioned gateway.
        if !l3_exempt(&a.path)
            && a.is_ident(i)
            && (a.t(i) == "Instant" || a.t(i) == "SystemTime")
            && a.t(i + 1) == "::"
            && a.t(i + 2) == "now"
        {
            hits.push(Hit {
                rule: "L3",
                line,
                message: format!("raw clock read `{}::now` outside clock.rs", a.t(i)),
                hint: "take elapsed time through noswalker_core::WallTimer (or model it \
                       with PipelineClock); only clock.rs touches std::time directly"
                    .into(),
            });
        }
        // L8: the online serving hot paths must stay deterministic — no
        // blocking sleeps and no raw wall-clock reads. (L3 is waived for
        // crates/serve so a clock read there is reported once, as L8.)
        if l8_scope(&a.path) {
            if a.t(i) == "thread" && a.t(i + 1) == "::" && a.t(i + 2) == "sleep" {
                hits.push(Hit {
                    rule: "L8",
                    line,
                    message: "`thread::sleep` in a serving hot path".into(),
                    hint: "serve advances modeled time (now_ns) between rounds; pacing \
                           belongs in the load generator, never as a blocking sleep"
                        .into(),
                });
            }
            if a.is_ident(i)
                && (a.t(i) == "Instant" || a.t(i) == "SystemTime")
                && a.t(i + 1) == "::"
                && a.t(i + 2) == "now"
            {
                hits.push(Hit {
                    rule: "L8",
                    line,
                    message: format!("raw clock read `{}::now` in a serving hot path", a.t(i)),
                    hint: "serve must stay replayable: derive time from the modeled clock \
                           (query arrival_ns + per-round sim_ns), or measure through \
                           noswalker_core::WallTimer at the CLI/bench boundary"
                        .into(),
                });
            }
        }
        // L4: thread spawns outside the sanctioned concurrency modules.
        if !l4_exempt(&a.path)
            && a.t(i) == "thread"
            && a.t(i + 1) == "::"
            && (a.t(i + 2) == "spawn" || a.t(i + 2) == "Builder")
        {
            hits.push(Hit {
                rule: "L4",
                line,
                message: format!("thread spawned via `thread::{}`", a.t(i + 2)),
                hint: "background work goes through BackgroundLoader (threaded.rs) or the \
                       worker pool (parallel.rs); do not spawn ad-hoc threads"
                    .into(),
            });
        }
        // L5: panicking calls in library code of core/storage/graph.
        if in_l5_scope(&a.path) {
            if a.t(i) == "."
                && (a.t(i + 1) == "unwrap" || a.t(i + 1) == "expect")
                && a.t(i + 2) == "("
            {
                hits.push(Hit {
                    rule: "L5",
                    line: toks[i + 1].line,
                    message: format!("`.{}()` in library code", a.t(i + 1)),
                    hint: "propagate a Result/Option to the caller, or justify the panic \
                           with a suppression comment registered in nosw-lint.allow"
                        .into(),
                });
            }
            if a.is_ident(i) && PANIC_MACROS.contains(&a.t(i)) && a.t(i + 1) == "!" {
                hits.push(Hit {
                    rule: "L5",
                    line,
                    message: format!("`{}!` in library code", a.t(i)),
                    hint: "return an error instead of panicking, or justify the panic with \
                           a suppression comment registered in nosw-lint.allow"
                        .into(),
                });
            }
        }
        // L7: atomic state in the core crate stays in the audited modules.
        if !l7_exempt(&a.path) && a.is_ident(i) && ATOMIC_TYPES.contains(&a.t(i)) {
            hits.push(Hit {
                rule: "L7",
                line,
                message: format!("`{}` outside the audited concurrency modules", a.t(i)),
                hint: "shared counters belong in metrics.rs (SharedMetrics), lock-free \
                       claim state in presample.rs (PublishedBuffer); route concurrent \
                       state through those modules or parallel.rs"
                    .into(),
            });
        }
        // L6 (site check): every `unsafe` needs a SAFETY comment above it.
        if a.is_ident(i) && a.t(i) == "unsafe" {
            let mut covered = false;
            let mut l = line;
            // Walk up through contiguous comment lines (and the same line).
            loop {
                if a.lexed.comments.iter().any(|c| {
                    c.line == l
                        && c.text
                            .trim_start_matches(['/', '!', '*'])
                            .trim_start()
                            .starts_with("SAFETY:")
                }) {
                    covered = true;
                    break;
                }
                if l == 0 {
                    break;
                }
                l -= 1;
                if l < line && !comment_lines.contains(&l) {
                    break;
                }
            }
            if !covered {
                hits.push(Hit {
                    rule: "L6",
                    line,
                    message: "`unsafe` without a preceding SAFETY comment".into(),
                    hint: "document the upheld invariant in a `// SAFETY:` comment \
                           directly above the unsafe code"
                        .into(),
                });
            }
        }
    }
    hits
}

/// Crate key for a path: `crates/<name>` or `.` for the facade crate.
fn crate_of(path: &str) -> Option<String> {
    if let Some(rest) = path.strip_prefix("crates/") {
        let name = rest.split('/').next()?;
        return Some(format!("crates/{name}"));
    }
    if path.starts_with("src/") {
        return Some(".".to_string());
    }
    None
}

fn has_forbid_unsafe(a: &Analysis) -> bool {
    let toks = &a.lexed.tokens;
    (0..toks.len()).any(|i| {
        a.t(i) == "#"
            && a.t(i + 1) == "!"
            && a.t(i + 2) == "["
            && (a.t(i + 3) == "forbid" || a.t(i + 3) == "deny")
            && a.t(i + 4) == "("
            && a.t(i + 5) == "unsafe_code"
    })
}

/// Runs every rule over the lexed files and cross-checks the allowlist.
pub fn run(files: &[SourceFile], allow: &Allowlist) -> Vec<Violation> {
    let mut analyses: Vec<Analysis> = files.iter().map(Analysis::new).collect();
    analyses.sort_by(|a, b| a.path.cmp(&b.path));
    let fields = metrics_fields(&analyses);
    let trace = trace_info(&analyses);
    let mut out: Vec<Violation> = Vec::new();

    // Per-file rules with suppression.
    for a in &mut analyses {
        let hits = collect_hits(a, &fields);
        for h in hits {
            let suppressed = a
                .annotations
                .iter_mut()
                .find(|an| an.rule == h.rule && an.target == Some(h.line));
            if let Some(an) = suppressed {
                an.used = true;
                continue;
            }
            out.push(Violation {
                rule: h.rule,
                path: a.path.clone(),
                line: h.line,
                message: h.message,
                hint: h.hint,
            });
        }
    }

    // L2: every TraceEvent variant needs an emit site and a handling site.
    if let Some(tr) = &trace {
        let mut emits: HashMap<&str, u32> = HashMap::new();
        let mut handles: HashMap<&str, u32> = HashMap::new();
        for a in &analyses {
            let is_def = a.path == tr.def_path;
            let in_engine = a.path.starts_with("crates/core/src/")
                || a.path.starts_with("crates/baselines/src/")
                || a.path.starts_with("crates/serve/src/");
            if !is_def && !in_engine {
                continue;
            }
            for (i, tok) in a.lexed.tokens.iter().enumerate() {
                if tok.text == "TraceEvent" && a.t(i + 1) == "::" && a.is_ident(i + 2) {
                    if a.is_test_line(tok.line) {
                        continue;
                    }
                    let v = a.t(i + 2);
                    if let Some((name, _)) = tr.variants.iter().find(|(name, _)| name == v) {
                        if is_def {
                            *handles.entry(name.as_str()).or_default() += 1;
                        } else {
                            *emits.entry(name.as_str()).or_default() += 1;
                        }
                    }
                }
            }
        }
        for (v, line) in &tr.variants {
            if emits.get(v.as_str()).copied().unwrap_or(0) == 0 {
                out.push(Violation {
                    rule: "L2",
                    path: tr.def_path.clone(),
                    line: *line,
                    message: format!("TraceEvent::{v} is never emitted by engine/baseline code"),
                    hint: format!(
                        "emit the variant where the engine performs the action \
                         (trace.emit(|| TraceEvent::{v} {{ .. }})) or remove it"
                    ),
                });
            }
            if handles.get(v.as_str()).copied().unwrap_or(0) == 0 {
                out.push(Violation {
                    rule: "L2",
                    path: tr.def_path.clone(),
                    line: *line,
                    message: format!("TraceEvent::{v} has no handling site in its defining module"),
                    hint: format!(
                        "teach the audit layer about TraceEvent::{v} (name/replay \
                         matches must cover every variant)"
                    ),
                });
            }
        }
    }

    // L6 (crate check): unsafe-free crates must forbid unsafe code.
    let mut crates: BTreeMap<String, bool> = BTreeMap::new();
    for a in &analyses {
        if let Some(key) = crate_of(&a.path) {
            let has_unsafe = a.lexed.tokens.iter().any(|t| t.text == "unsafe");
            *crates.entry(key).or_insert(false) |= has_unsafe;
        }
    }
    for (key, has_unsafe) in &crates {
        if *has_unsafe {
            continue;
        }
        let root = if key == "." {
            "src/lib.rs".to_string()
        } else {
            format!("{key}/src/lib.rs")
        };
        let root_main = root.replace("lib.rs", "main.rs");
        let Some(a) = analyses
            .iter()
            .find(|a| a.path == root)
            .or_else(|| analyses.iter().find(|a| a.path == root_main))
        else {
            continue;
        };
        if !has_forbid_unsafe(a) {
            out.push(Violation {
                rule: "L6",
                path: a.path.clone(),
                line: 1,
                message: format!("crate `{key}` has no unsafe code but does not forbid it"),
                hint: "add #![forbid(unsafe_code)] to the crate root so unsafe cannot \
                       creep in unannounced"
                    .into(),
            });
        }
    }

    // Annotation hygiene + allowlist cross-check.
    let mut counts: HashMap<(String, String), u32> = HashMap::new();
    for a in &analyses {
        for an in &a.annotations {
            *counts.entry((an.rule.clone(), a.path.clone())).or_default() += 1;
            if !an.reason_ok {
                out.push(Violation {
                    rule: "ALLOW",
                    path: a.path.clone(),
                    line: an.line,
                    message: "suppression annotation has no justification".into(),
                    hint: "write the reason after the colon; unexplained suppressions \
                           are not accepted"
                        .into(),
                });
            }
            if !an.used {
                out.push(Violation {
                    rule: "ALLOW",
                    path: a.path.clone(),
                    line: an.line,
                    message: format!(
                        "dangling suppression: no {} violation on the annotated line",
                        an.rule
                    ),
                    hint: "delete the annotation or move it directly above the line it \
                           justifies"
                        .into(),
                });
            }
        }
    }
    for e in &allow.entries {
        let actual = counts
            .get(&(e.rule.clone(), e.path.clone()))
            .copied()
            .unwrap_or(0);
        if actual != e.count {
            out.push(Violation {
                rule: "ALLOW",
                path: e.path.clone(),
                line: 1,
                message: format!(
                    "allowlist records {} {} suppression(s) for this file but the \
                     source carries {actual}",
                    e.count, e.rule
                ),
                hint: "update crates/lint/nosw-lint.allow to match the annotations \
                       actually present"
                    .into(),
            });
        }
    }
    for ((rule, path), count) in &counts {
        let registered = allow
            .entries
            .iter()
            .any(|e| &e.rule == rule && &e.path == path);
        if !registered {
            out.push(Violation {
                rule: "ALLOW",
                path: path.clone(),
                line: 1,
                message: format!(
                    "{count} {rule} suppression(s) in this file are not registered in \
                     the allowlist"
                ),
                hint: "add a `RULE PATH COUNT` line to crates/lint/nosw-lint.allow".into(),
            });
        }
    }

    out.sort_by(|x, y| (&x.path, x.line, x.rule).cmp(&(&y.path, y.line, y.rule)));
    out
}
