//! L6 — every `unsafe` is preceded by a `SAFETY:` comment, and crates
//! with no unsafe code `#![forbid(unsafe_code)]` so it cannot creep in.

use std::collections::{BTreeMap, BTreeSet};

use super::{Hit, Pass, PassCx};
use crate::analysis::Analysis;

/// Crate key for a path: `crates/<name>` or `.` for the facade crate.
fn crate_of(path: &str) -> Option<String> {
    if let Some(rest) = path.strip_prefix("crates/") {
        let name = rest.split('/').next()?;
        return Some(format!("crates/{name}"));
    }
    if path.starts_with("src/") {
        return Some(".".to_string());
    }
    None
}

fn has_forbid_unsafe(a: &Analysis) -> bool {
    let toks = &a.lexed.tokens;
    (0..toks.len()).any(|i| {
        a.t(i) == "#"
            && a.t(i + 1) == "!"
            && a.t(i + 2) == "["
            && (a.t(i + 3) == "forbid" || a.t(i + 3) == "deny")
            && a.t(i + 4) == "("
            && a.t(i + 5) == "unsafe_code"
    })
}

pub(crate) struct UnsafeHygiene;

impl Pass for UnsafeHygiene {
    fn id(&self) -> &'static str {
        "L6"
    }

    fn run(&self, cx: &PassCx<'_>, out: &mut Vec<Hit>) {
        // Site check: every `unsafe` needs a SAFETY comment above it.
        for (fi, a) in cx.files.iter().enumerate() {
            let comment_lines: BTreeSet<u32> = a.lexed.comments.iter().map(|c| c.line).collect();
            for tok in a.lexed.tokens.iter().filter(|t| t.text == "unsafe") {
                let line = tok.line;
                if a.is_test_line(line) {
                    continue;
                }
                let mut covered = false;
                let mut l = line;
                // Walk up through contiguous comment lines (and the same line).
                loop {
                    if a.lexed.comments.iter().any(|c| {
                        c.line == l
                            && c.text
                                .trim_start_matches(['/', '!', '*'])
                                .trim_start()
                                .starts_with("SAFETY:")
                    }) {
                        covered = true;
                        break;
                    }
                    if l == 0 {
                        break;
                    }
                    l -= 1;
                    if l < line && !comment_lines.contains(&l) {
                        break;
                    }
                }
                if !covered {
                    out.push(Hit {
                        file: fi,
                        rule: "L6",
                        line,
                        message: "`unsafe` without a preceding SAFETY comment".into(),
                        hint: "document the upheld invariant in a `// SAFETY:` comment \
                               directly above the unsafe code"
                            .into(),
                    });
                }
            }
        }

        // Crate check: unsafe-free crates must forbid unsafe code.
        let mut crates: BTreeMap<String, bool> = BTreeMap::new();
        for a in cx.files {
            if let Some(key) = crate_of(&a.path) {
                let has_unsafe = a.lexed.tokens.iter().any(|t| t.text == "unsafe");
                *crates.entry(key).or_insert(false) |= has_unsafe;
            }
        }
        for (key, has_unsafe) in &crates {
            if *has_unsafe {
                continue;
            }
            let root = if key == "." {
                "src/lib.rs".to_string()
            } else {
                format!("{key}/src/lib.rs")
            };
            let root_main = root.replace("lib.rs", "main.rs");
            let Some(fi) = cx
                .files
                .iter()
                .position(|a| a.path == root)
                .or_else(|| cx.files.iter().position(|a| a.path == root_main))
            else {
                continue;
            };
            if !has_forbid_unsafe(&cx.files[fi]) {
                out.push(Hit {
                    file: fi,
                    rule: "L6",
                    line: 1,
                    message: format!("crate `{key}` has no unsafe code but does not forbid it"),
                    hint: "add #![forbid(unsafe_code)] to the crate root so unsafe cannot \
                           creep in unannounced"
                        .into(),
                });
            }
        }
    }
}
