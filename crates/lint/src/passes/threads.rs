//! L4 — threads are only spawned in `threaded.rs` / `parallel.rs`, plus
//! the realtime serving driver's single tick thread.

use super::{Hit, Pass, PassCx};

fn l4_exempt(path: &str) -> bool {
    path.ends_with("/threaded.rs")
        || path.ends_with("/parallel.rs")
        // The realtime serving driver owns exactly one background tick
        // thread; it is the sanctioned spawn site in crates/serve.
        || path == "crates/serve/src/realtime.rs"
}

pub(crate) struct ThreadConfinement;

impl Pass for ThreadConfinement {
    fn id(&self) -> &'static str {
        "L4"
    }

    fn run(&self, cx: &PassCx<'_>, out: &mut Vec<Hit>) {
        for (fi, a) in cx.files.iter().enumerate() {
            if l4_exempt(&a.path) {
                continue;
            }
            for i in 0..a.lexed.tokens.len() {
                let line = a.lexed.tokens[i].line;
                if a.is_test_line(line) {
                    continue;
                }
                if a.t(i) == "thread"
                    && a.t(i + 1) == "::"
                    && (a.t(i + 2) == "spawn" || a.t(i + 2) == "Builder")
                {
                    out.push(Hit {
                        file: fi,
                        rule: "L4",
                        line,
                        message: format!("thread spawned via `thread::{}`", a.t(i + 2)),
                        hint: "background work goes through BackgroundLoader (threaded.rs) or \
                               the worker pool (parallel.rs); do not spawn ad-hoc threads"
                            .into(),
                    });
                }
            }
        }
    }
}
