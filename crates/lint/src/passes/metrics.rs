//! L1 — `RunMetrics` fields are only written through the tracked helpers
//! in `crates/core/src/metrics.rs` — and L12 — every `RunMetrics` counter
//! is referenced by at least one conservation law in `audit.rs`.
//!
//! Together they close the metrics loop: L1 guarantees a counter can only
//! change through an audited helper, L12 guarantees the audit actually
//! looks at it, so a newly added counter cannot silently escape the
//! conservation laws.

use std::collections::BTreeSet;

use super::{Hit, Pass, PassCx};

/// Methods that mutate an atomic counter (treated as writes under L1).
const ATOMIC_WRITES: &[&str] = &["store", "fetch_add", "fetch_sub", "fetch_max", "fetch_min"];
/// Compound and plain assignment operators.
const ASSIGN_OPS: &[&str] = &[
    "=", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "<<=", ">>=",
];

pub(crate) struct MetricsWrites;

impl Pass for MetricsWrites {
    fn id(&self) -> &'static str {
        "L1"
    }

    fn run(&self, cx: &PassCx<'_>, out: &mut Vec<Hit>) {
        let fields: BTreeSet<&str> = cx
            .index
            .metrics_fields
            .iter()
            .map(|f| f.name.as_str())
            .collect();
        if fields.is_empty() {
            return;
        }
        for (fi, a) in cx.files.iter().enumerate() {
            if a.path.ends_with("core/src/metrics.rs") {
                continue;
            }
            // L1 only bites in files that handle `RunMetrics` at all; a
            // field named `steps` on some unrelated walker struct is not a
            // metrics write.
            let toks = &a.lexed.tokens;
            if !toks.iter().any(|t| t.text == "RunMetrics") {
                continue;
            }
            for i in 0..toks.len() {
                if a.is_test_line(toks[i].line) {
                    continue;
                }
                if a.t(i) != "." || !a.is_ident(i + 1) || !fields.contains(a.t(i + 1)) {
                    continue;
                }
                let field = a.t(i + 1).to_string();
                if ASSIGN_OPS.contains(&a.t(i + 2)) {
                    out.push(Hit {
                        file: fi,
                        rule: "L1",
                        line: toks[i + 1].line,
                        message: format!("direct write to RunMetrics field `{field}`"),
                        hint: format!(
                            "route the update through a tracked RunMetrics helper \
                             (record_*/set_*) in crates/core/src/metrics.rs instead of \
                             assigning `{field}` here"
                        ),
                    });
                } else if a.t(i + 2) == "."
                    && ATOMIC_WRITES.contains(&a.t(i + 3))
                    && a.t(i + 4) == "("
                {
                    out.push(Hit {
                        file: fi,
                        rule: "L1",
                        line: toks[i + 1].line,
                        message: format!("atomic write to shared metrics field `{field}`"),
                        hint: "mutate shared counters through SharedMetrics/LocalCounters in \
                               crates/core/src/metrics.rs"
                            .into(),
                    });
                }
            }
        }
    }
}

pub(crate) struct AuditCoverage;

impl Pass for AuditCoverage {
    fn id(&self) -> &'static str {
        "L12"
    }

    fn run(&self, cx: &PassCx<'_>, out: &mut Vec<Hit>) {
        let Some(metrics_path) = &cx.index.metrics_path else {
            return;
        };
        let Some(mfi) = cx.files.iter().position(|a| &a.path == metrics_path) else {
            return;
        };
        let Some(audit) = cx
            .files
            .iter()
            .find(|a| a.path.ends_with("core/src/audit.rs"))
        else {
            return;
        };
        // Every `.field` access in non-test audit code counts as coverage:
        // a law that reads the counter references it this way.
        let mut referenced: BTreeSet<&str> = BTreeSet::new();
        let toks = &audit.lexed.tokens;
        for (i, tok) in toks.iter().enumerate() {
            if tok.text == "." && audit.is_ident(i + 1) && !audit.is_test_line(tok.line) {
                referenced.insert(audit.t(i + 1));
            }
        }
        for f in &cx.index.metrics_fields {
            // Counters are the plain `u64` fields; `_ns` clock aggregates
            // are checked by the clock-sanity law as a family, and
            // non-`u64` fields (e.g. `Option<u64>` markers) carry no
            // conserved quantity.
            if f.ty != ["u64"] || f.name.ends_with("_ns") {
                continue;
            }
            if !referenced.contains(f.name.as_str()) {
                out.push(Hit {
                    file: mfi,
                    rule: "L12",
                    line: f.line,
                    message: format!(
                        "RunMetrics counter `{}` is not referenced by any conservation \
                         law in audit.rs",
                        f.name
                    ),
                    hint: format!(
                        "add (or extend) a law in RunAudit::verify_metrics that reads \
                         `{}` — every counter must be auditable, or it can drift \
                         silently",
                        f.name
                    ),
                });
            }
        }
    }
}
