//! Phase-2 rule passes.
//!
//! Each pass consumes the per-file analyses and the workspace
//! [`SymbolIndex`](crate::index::SymbolIndex) through a [`PassCx`] and
//! emits raw [`Hit`]s. The driver in [`crate::rules`] owns everything
//! that happens *after* a hit: suppression matching, allowlist
//! cross-checks, and ordering of the final report — so a pass only has
//! to express what is wrong, where, and how to fix it.

pub(crate) mod atomics;
pub(crate) mod clock;
pub(crate) mod determinism;
pub(crate) mod locks;
pub(crate) mod metrics;
pub(crate) mod panics;
pub(crate) mod threads;
pub(crate) mod trace;
pub(crate) mod unsafety;

use crate::analysis::Analysis;
use crate::index::SymbolIndex;

/// Shared read-only context handed to every pass.
pub(crate) struct PassCx<'a> {
    pub files: &'a [Analysis],
    pub index: &'a SymbolIndex,
}

/// One raw rule hit before suppression is applied.
pub(crate) struct Hit {
    /// Index into `PassCx::files` of the file the hit is reported against.
    pub file: usize,
    pub rule: &'static str,
    pub line: u32,
    pub message: String,
    pub hint: String,
}

/// A pluggable rule pass.
pub(crate) trait Pass {
    /// Rule family the pass implements, for diagnostics.
    fn id(&self) -> &'static str;
    /// Scans the workspace and appends raw hits.
    fn run(&self, cx: &PassCx<'_>, out: &mut Vec<Hit>);
}

/// The full pass registry, in rule order.
pub(crate) fn all() -> Vec<Box<dyn Pass>> {
    vec![
        Box::new(metrics::MetricsWrites),
        Box::new(trace::TraceCoverage),
        Box::new(clock::ClockDiscipline),
        Box::new(threads::ThreadConfinement),
        Box::new(panics::NoPanics),
        Box::new(unsafety::UnsafeHygiene),
        Box::new(atomics::AtomicConfinement),
        Box::new(clock::ServeDeterminism),
        Box::new(determinism::DigestDeterminism),
        Box::new(atomics::OrderingDiscipline),
        Box::new(locks::LockDiscipline),
        Box::new(metrics::AuditCoverage),
    ]
}
