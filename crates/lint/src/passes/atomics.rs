//! L7 — `std::sync::atomic` types in `crates/core/src` only in
//! `metrics.rs`, `presample.rs`, `parallel.rs` — and L10 — memory-ordering
//! discipline for core and serve.
//!
//! L10 enforces the two halves of the lock-free protocol register:
//!
//! * `Ordering::Relaxed` is only legitimate on the sanctioned *counter*
//!   modules, where every atomic is a mergeable tally folded at a barrier
//!   (`metrics.rs` SharedMetrics, `presample.rs` cursor claims, the serve
//!   layer's per-query slot counters in `app.rs`). A Relaxed anywhere else
//!   is either a bug or needs an explicit suppression with justification.
//! * Any Acquire/Release/AcqRel/SeqCst site is a *protocol* site: it must
//!   carry an anchored comment starting with the ordering marker that
//!   documents what it pairs with. Those comments are registered two-way
//!   in `nosw-lint.allow` (rule key `ORDERING`), exactly like L5
//!   suppressions, so a stale protocol comment fails the run.

use super::{Hit, Pass, PassCx};

/// The `std::sync::atomic` type names gated by L7: concurrent state in the
/// core crate is confined to the modules whose invariants are documented
/// and audited (metrics counters, the published pre-sample pool, the
/// parallel runner).
const ATOMIC_TYPES: &[&str] = &[
    "AtomicBool",
    "AtomicU8",
    "AtomicU16",
    "AtomicU32",
    "AtomicU64",
    "AtomicUsize",
    "AtomicI8",
    "AtomicI16",
    "AtomicI32",
    "AtomicI64",
    "AtomicIsize",
    "AtomicPtr",
];

/// Files where `Ordering::Relaxed` is sanctioned: all their atomics are
/// commutative counters folded at a synchronization barrier, so ordering
/// genuinely does not matter.
const SANCTIONED_RELAXED: &[&str] = &[
    "crates/core/src/metrics.rs",
    "crates/core/src/presample.rs",
    "crates/serve/src/app.rs",
];

fn l7_exempt(path: &str) -> bool {
    !path.starts_with("crates/core/src/")
        || path.ends_with("/metrics.rs")
        || path.ends_with("/presample.rs")
        || path.ends_with("/parallel.rs")
}

/// L10 applies to the engine and serving crates — the code whose
/// cross-backend determinism the atomics protocols protect.
pub(crate) fn l10_scope(path: &str) -> bool {
    path.starts_with("crates/core/src/") || path.starts_with("crates/serve/src/")
}

pub(crate) struct AtomicConfinement;

impl Pass for AtomicConfinement {
    fn id(&self) -> &'static str {
        "L7"
    }

    fn run(&self, cx: &PassCx<'_>, out: &mut Vec<Hit>) {
        for (fi, a) in cx.files.iter().enumerate() {
            if l7_exempt(&a.path) {
                continue;
            }
            for (i, tok) in a.lexed.tokens.iter().enumerate() {
                if a.is_test_line(tok.line) || !a.is_ident(i) || !ATOMIC_TYPES.contains(&a.t(i)) {
                    continue;
                }
                out.push(Hit {
                    file: fi,
                    rule: "L7",
                    line: tok.line,
                    message: format!("`{}` outside the audited concurrency modules", a.t(i)),
                    hint: "shared counters belong in metrics.rs (SharedMetrics), lock-free \
                           claim state in presample.rs (PublishedBuffer); route concurrent \
                           state through those modules or parallel.rs"
                        .into(),
                });
            }
        }
    }
}

pub(crate) struct OrderingDiscipline;

impl Pass for OrderingDiscipline {
    fn id(&self) -> &'static str {
        "L10"
    }

    fn run(&self, cx: &PassCx<'_>, out: &mut Vec<Hit>) {
        for site in &cx.index.ordering_sites {
            let a = &cx.files[site.file];
            if !l10_scope(&a.path) {
                continue;
            }
            if site.which == "Relaxed" {
                if !SANCTIONED_RELAXED.contains(&a.path.as_str()) {
                    out.push(Hit {
                        file: site.file,
                        rule: "L10",
                        line: site.line,
                        message: "`Ordering::Relaxed` outside the sanctioned counter modules"
                            .into(),
                        hint: "Relaxed is only safe for mergeable counters (metrics.rs \
                               SharedMetrics, presample.rs cursor claims, serve app.rs slot \
                               folds); use a stronger ordering with a protocol comment, or \
                               justify with a registered suppression"
                            .into(),
                    });
                }
            } else {
                let covered = a
                    .ordering_comments
                    .iter()
                    .any(|c| c.target == Some(site.line));
                if !covered {
                    out.push(Hit {
                        file: site.file,
                        rule: "L10",
                        line: site.line,
                        message: format!(
                            "`Ordering::{}` without an anchored protocol comment",
                            site.which
                        ),
                        hint: "document the acquire/release pairing in an ordering-marker \
                               comment directly above the site and register it in \
                               crates/lint/nosw-lint.allow under rule ORDERING"
                            .into(),
                    });
                }
            }
        }
        // Dangling protocol comments: a register entry must anchor a real
        // Acquire/Release/AcqRel/SeqCst site, or it is documentation rot.
        for (fi, a) in cx.files.iter().enumerate() {
            if !l10_scope(&a.path) {
                continue;
            }
            for c in &a.ordering_comments {
                let anchored = cx
                    .index
                    .ordering_sites
                    .iter()
                    .any(|s| s.file == fi && s.which != "Relaxed" && Some(s.line) == c.target);
                if !anchored {
                    out.push(Hit {
                        file: fi,
                        rule: "L10",
                        line: c.line,
                        message: "dangling ordering-protocol comment: no Acquire/Release/\
                                  SeqCst site on the annotated line"
                            .into(),
                        hint: "delete the comment or move it directly above the atomic \
                               operation it documents"
                            .into(),
                    });
                }
            }
        }
    }
}
