//! L11 — lock discipline in the parallel runner and the serving layer.
//!
//! DESIGN.md §11's pool invariant is "Mutex held only at publish/acquire":
//! a guard is taken, the protected pointer is swapped, and the guard drops
//! in the same statement or binding block. This pass flags any `let`-bound
//! Mutex guard whose live range (binding to enclosing-block close, or an
//! explicit `drop(guard)`) crosses a loop body or a call into the loader —
//! the two shapes that turn a cheap pointer-swap lock into a contention
//! point that can stall steppers behind I/O.

use super::{Hit, Pass, PassCx};

/// Loader entry points a guard must never be held across: each can block
/// on I/O or on the loader thread's queue.
const LOADER_CALLS: &[&str] = &["request", "try_request", "recv"];

fn l11_scope(path: &str) -> bool {
    path.ends_with("core/src/parallel.rs") || path.starts_with("crates/serve/src/")
}

pub(crate) struct LockDiscipline;

impl Pass for LockDiscipline {
    fn id(&self) -> &'static str {
        "L11"
    }

    fn run(&self, cx: &PassCx<'_>, out: &mut Vec<Hit>) {
        for g in &cx.index.guards {
            let a = &cx.files[g.file];
            if !l11_scope(&a.path) {
                continue;
            }
            let toks = &a.lexed.tokens;
            let mut depth = 0i32;
            let mut k = g.start;
            while k < toks.len() {
                match a.t(k) {
                    "{" => depth += 1,
                    "}" => {
                        depth -= 1;
                        if depth < 0 {
                            break; // enclosing block closed: guard dropped
                        }
                    }
                    "drop" if a.t(k + 1) == "(" && a.t(k + 2) == g.name && a.t(k + 3) == ")" => {
                        break; // explicit early drop
                    }
                    kw @ ("for" | "while" | "loop") if a.is_ident(k) => {
                        out.push(Hit {
                            file: g.file,
                            rule: "L11",
                            line: g.line,
                            message: format!(
                                "lock guard `{}` is held across a `{kw}` loop",
                                g.name
                            ),
                            hint: "drop the guard before iterating (scope the binding in a \
                                   block or call drop(guard)); the pool invariant is \
                                   \"Mutex held only at publish/acquire\""
                                .into(),
                        });
                        break;
                    }
                    "." if a.is_ident(k + 1)
                        && LOADER_CALLS.contains(&a.t(k + 1))
                        && a.t(k + 2) == "(" =>
                    {
                        out.push(Hit {
                            file: g.file,
                            rule: "L11",
                            line: g.line,
                            message: format!(
                                "lock guard `{}` is held across a loader call `.{}()`",
                                g.name,
                                a.t(k + 1)
                            ),
                            hint: "release the guard before touching the loader; a guard \
                                   held across I/O turns the pointer-swap lock into a \
                                   stall point for every stepper"
                                .into(),
                        });
                        break;
                    }
                    _ => {}
                }
                k += 1;
            }
        }
    }
}
