//! L2 — every `TraceEvent` variant has an emit site (engine/baselines/
//! serve) and a handling site (its defining module).

use std::collections::HashMap;

use super::{Hit, Pass, PassCx};

pub(crate) struct TraceCoverage;

impl Pass for TraceCoverage {
    fn id(&self) -> &'static str {
        "L2"
    }

    fn run(&self, cx: &PassCx<'_>, out: &mut Vec<Hit>) {
        let Some(tr) = &cx.index.trace else {
            return;
        };
        let Some(def_fi) = cx.files.iter().position(|a| a.path == tr.def_path) else {
            return;
        };
        let mut emits: HashMap<&str, u32> = HashMap::new();
        let mut handles: HashMap<&str, u32> = HashMap::new();
        for a in cx.files {
            let is_def = a.path == tr.def_path;
            let in_engine = a.path.starts_with("crates/core/src/")
                || a.path.starts_with("crates/baselines/src/")
                || a.path.starts_with("crates/serve/src/")
                || a.path.starts_with("crates/shard/src/");
            if !is_def && !in_engine {
                continue;
            }
            for (i, tok) in a.lexed.tokens.iter().enumerate() {
                if tok.text == "TraceEvent" && a.t(i + 1) == "::" && a.is_ident(i + 2) {
                    if a.is_test_line(tok.line) {
                        continue;
                    }
                    let v = a.t(i + 2);
                    if let Some((name, _)) = tr.variants.iter().find(|(name, _)| name == v) {
                        if is_def {
                            *handles.entry(name.as_str()).or_default() += 1;
                        } else {
                            *emits.entry(name.as_str()).or_default() += 1;
                        }
                    }
                }
            }
        }
        for (v, line) in &tr.variants {
            if emits.get(v.as_str()).copied().unwrap_or(0) == 0 {
                out.push(Hit {
                    file: def_fi,
                    rule: "L2",
                    line: *line,
                    message: format!("TraceEvent::{v} is never emitted by engine/baseline code"),
                    hint: format!(
                        "emit the variant where the engine performs the action \
                         (trace.emit(|| TraceEvent::{v} {{ .. }})) or remove it"
                    ),
                });
            }
            if handles.get(v.as_str()).copied().unwrap_or(0) == 0 {
                out.push(Hit {
                    file: def_fi,
                    rule: "L2",
                    line: *line,
                    message: format!("TraceEvent::{v} has no handling site in its defining module"),
                    hint: format!(
                        "teach the audit layer about TraceEvent::{v} (name/replay \
                         matches must cover every variant)"
                    ),
                });
            }
        }
    }
}
