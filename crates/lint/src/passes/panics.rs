//! L5 — no `unwrap`/`expect`/`panic!` family in library code of
//! core/storage/graph.

use super::{Hit, Pass, PassCx};

/// Panicking macros covered by L5 (`assert!` is deliberately excluded:
/// contract assertions are part of the documented library API).
const PANIC_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];

fn in_l5_scope(path: &str) -> bool {
    path.starts_with("crates/core/src/")
        || path.starts_with("crates/storage/src/")
        || path.starts_with("crates/graph/src/")
}

pub(crate) struct NoPanics;

impl Pass for NoPanics {
    fn id(&self) -> &'static str {
        "L5"
    }

    fn run(&self, cx: &PassCx<'_>, out: &mut Vec<Hit>) {
        for (fi, a) in cx.files.iter().enumerate() {
            if !in_l5_scope(&a.path) {
                continue;
            }
            let toks = &a.lexed.tokens;
            for i in 0..toks.len() {
                let line = toks[i].line;
                if a.is_test_line(line) {
                    continue;
                }
                if a.t(i) == "."
                    && (a.t(i + 1) == "unwrap" || a.t(i + 1) == "expect")
                    && a.t(i + 2) == "("
                {
                    out.push(Hit {
                        file: fi,
                        rule: "L5",
                        line: toks[i + 1].line,
                        message: format!("`.{}()` in library code", a.t(i + 1)),
                        hint: "propagate a Result/Option to the caller, or justify the panic \
                               with a suppression comment registered in nosw-lint.allow"
                            .into(),
                    });
                }
                if a.is_ident(i) && PANIC_MACROS.contains(&a.t(i)) && a.t(i + 1) == "!" {
                    out.push(Hit {
                        file: fi,
                        rule: "L5",
                        line,
                        message: format!("`{}!` in library code", a.t(i)),
                        hint: "return an error instead of panicking, or justify the panic \
                               with a suppression comment registered in nosw-lint.allow"
                            .into(),
                    });
                }
            }
        }
    }
}
