//! L9 — determinism on digest/trace-reachable paths.
//!
//! The serving layer's cross-backend parity guarantee (bit-identical
//! result digests regardless of engine) holds only if every function that
//! can influence a digest or an emitted trace event is deterministic:
//! walker movement routed through `Walk::sample_for`'s walker-private
//! stream, no ambient randomness, and no iteration order leaking out of
//! unordered containers.
//!
//! The pass finds *root* functions — any function in core/serve whose
//! body mentions `TraceEvent::` or a digest identifier (or whose own name
//! contains "digest") — walks the name-based call graph from the index,
//! and flags nondeterminism sources in every reachable function:
//!
//! * ambient randomness: `thread_rng`, `from_entropy`, `OsRng`,
//!   `rand::random`
//! * time-seeded RNGs: `seed_from_u64(now…)` / `…elapsed…`
//! * unordered containers: `HashMap` / `HashSet` (iteration order varies
//!   run to run; use `BTreeMap`/`BTreeSet` or sort before folding)
//!
//! The call graph is name-based and over-approximate, which is the safe
//! direction: a spurious edge can only widen the checked set.

use super::{Hit, Pass, PassCx};

const AMBIENT_RNG: &[&str] = &["thread_rng", "from_entropy", "OsRng"];
const UNORDERED: &[&str] = &["HashMap", "HashSet"];

fn l9_scope(path: &str) -> bool {
    path.starts_with("crates/core/src/")
        || path.starts_with("crates/serve/src/")
        || path.starts_with("crates/shard/src/")
}

pub(crate) struct DigestDeterminism;

impl Pass for DigestDeterminism {
    fn id(&self) -> &'static str {
        "L9"
    }

    fn run(&self, cx: &PassCx<'_>, out: &mut Vec<Hit>) {
        // Roots: functions that touch a digest or emit trace events.
        let mut roots = Vec::new();
        for (i, f) in cx.index.fns.iter().enumerate() {
            let a = &cx.files[f.file];
            if !l9_scope(&a.path) || a.is_test_line(f.line) {
                continue;
            }
            let named_digest = f.name.to_ascii_lowercase().contains("digest");
            let body_roots = (f.body.0..=f.body.1).any(|k| {
                (a.t(k) == "TraceEvent" && a.t(k + 1) == "::")
                    || (a.is_ident(k) && a.t(k).to_ascii_lowercase().contains("digest"))
            });
            if named_digest || body_roots {
                roots.push(i);
            }
        }
        if roots.is_empty() {
            return;
        }
        let reachable = cx.index.reachable(cx.files, &roots, l9_scope);
        for &fid in &reachable {
            let f = &cx.index.fns[fid];
            let a = &cx.files[f.file];
            if a.is_test_line(f.line) {
                continue;
            }
            let toks = &a.lexed.tokens;
            for k in f.body.0..=f.body.1 {
                let line = toks[k].line;
                if a.is_test_line(line) {
                    continue;
                }
                if a.is_ident(k) && AMBIENT_RNG.contains(&a.t(k)) {
                    out.push(Hit {
                        file: f.file,
                        rule: "L9",
                        line,
                        message: format!(
                            "ambient randomness `{}` in `{}`, reachable from a \
                             digest/trace path",
                            a.t(k),
                            f.name
                        ),
                        hint: "draw from the walker-private stream (Walk::sample_for) or a \
                               seeded WalkRng threaded from the run configuration"
                            .into(),
                    });
                }
                if a.t(k) == "rand" && a.t(k + 1) == "::" && a.t(k + 2) == "random" {
                    out.push(Hit {
                        file: f.file,
                        rule: "L9",
                        line,
                        message: format!(
                            "`rand::random` in `{}`, reachable from a digest/trace path",
                            f.name
                        ),
                        hint: "draw from the walker-private stream (Walk::sample_for) or a \
                               seeded WalkRng threaded from the run configuration"
                            .into(),
                    });
                }
                if a.t(k) == "seed_from_u64" && a.t(k + 1) == "(" {
                    // Scan the argument tokens for a time source.
                    let mut depth = 1i32;
                    let mut m = k + 2;
                    let mut timey = None;
                    while m < toks.len() && depth > 0 {
                        match a.t(m) {
                            "(" => depth += 1,
                            ")" => depth -= 1,
                            t if a.is_ident(m)
                                && (t.starts_with("now") || t.contains("elapsed")) =>
                            {
                                timey = Some(t.to_string());
                            }
                            _ => {}
                        }
                        m += 1;
                    }
                    if let Some(src) = timey {
                        out.push(Hit {
                            file: f.file,
                            rule: "L9",
                            line,
                            message: format!(
                                "time-seeded RNG (`seed_from_u64({src}…)`) in `{}`, \
                                 reachable from a digest/trace path",
                                f.name
                            ),
                            hint: "seeds must come from the run configuration (a fixed seed \
                                   or a derived per-walker stream), never from the clock"
                                .into(),
                        });
                    }
                }
                if a.is_ident(k) && UNORDERED.contains(&a.t(k)) {
                    out.push(Hit {
                        file: f.file,
                        rule: "L9",
                        line,
                        message: format!(
                            "unordered container `{}` in `{}`, reachable from a \
                             digest/trace path",
                            a.t(k),
                            f.name
                        ),
                        hint: "iteration order feeds the digest: use BTreeMap/BTreeSet, or \
                               sort before folding results"
                            .into(),
                    });
                }
            }
        }
        out.dedup_by(|x, y| x.file == y.file && x.line == y.line && x.message == y.message);
    }
}
