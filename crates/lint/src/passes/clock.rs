//! L3 — wall-clock reads only in `clock.rs`, `crates/bench`,
//! `crates/cli` — and L8 — no `thread::sleep` or raw clock reads in
//! `crates/serve/src` (serving hot paths use modeled time), with
//! `WallTimer` permitted only in the explicitly wall-clocked
//! `realtime.rs` driver.

use super::{Hit, Pass, PassCx};

fn l3_exempt(path: &str) -> bool {
    path.ends_with("/clock.rs")
        || path.starts_with("crates/bench/")
        || path.starts_with("crates/cli/")
        // The serving crate is policed by the stricter L8 instead, so a raw
        // clock read there fires exactly one rule.
        || path.starts_with("crates/serve/")
}

fn l8_scope(path: &str) -> bool {
    path.starts_with("crates/serve/src/")
}

/// The realtime driver is the one module in the serving crate allowed to
/// *hold* wall time (through a `WallTimer`); raw `std::time` reads and
/// sleeps stay banned even there, so pacing is interruptible and clock
/// reads stay funneled through the single audited gateway.
fn l8_wall_exempt(path: &str) -> bool {
    path == "crates/serve/src/realtime.rs"
}

fn is_clock_read(a: &crate::analysis::Analysis, i: usize) -> bool {
    a.is_ident(i)
        && (a.t(i) == "Instant" || a.t(i) == "SystemTime")
        && a.t(i + 1) == "::"
        && a.t(i + 2) == "now"
}

pub(crate) struct ClockDiscipline;

impl Pass for ClockDiscipline {
    fn id(&self) -> &'static str {
        "L3"
    }

    fn run(&self, cx: &PassCx<'_>, out: &mut Vec<Hit>) {
        for (fi, a) in cx.files.iter().enumerate() {
            if l3_exempt(&a.path) {
                continue;
            }
            for i in 0..a.lexed.tokens.len() {
                let line = a.lexed.tokens[i].line;
                if a.is_test_line(line) || !is_clock_read(a, i) {
                    continue;
                }
                out.push(Hit {
                    file: fi,
                    rule: "L3",
                    line,
                    message: format!("raw clock read `{}::now` outside clock.rs", a.t(i)),
                    hint: "take elapsed time through noswalker_core::WallTimer (or model it \
                           with PipelineClock); only clock.rs touches std::time directly"
                        .into(),
                });
            }
        }
    }
}

pub(crate) struct ServeDeterminism;

impl Pass for ServeDeterminism {
    fn id(&self) -> &'static str {
        "L8"
    }

    fn run(&self, cx: &PassCx<'_>, out: &mut Vec<Hit>) {
        for (fi, a) in cx.files.iter().enumerate() {
            if !l8_scope(&a.path) {
                continue;
            }
            for i in 0..a.lexed.tokens.len() {
                let line = a.lexed.tokens[i].line;
                if a.is_test_line(line) {
                    continue;
                }
                if a.t(i) == "thread" && a.t(i + 1) == "::" && a.t(i + 2) == "sleep" {
                    out.push(Hit {
                        file: fi,
                        rule: "L8",
                        line,
                        message: "`thread::sleep` in a serving hot path".into(),
                        hint: "serve advances modeled time (now_ns) between rounds; pacing \
                               belongs in the load generator, never as a blocking sleep"
                            .into(),
                    });
                }
                if is_clock_read(a, i) {
                    out.push(Hit {
                        file: fi,
                        rule: "L8",
                        line,
                        message: format!("raw clock read `{}::now` in a serving hot path", a.t(i)),
                        hint: "serve must stay replayable: derive time from the modeled clock \
                               (query arrival_ns + per-round sim_ns), or measure through \
                               noswalker_core::WallTimer at the CLI/bench boundary"
                            .into(),
                    });
                }
                if !l8_wall_exempt(&a.path) && a.is_ident(i) && a.t(i) == "WallTimer" {
                    out.push(Hit {
                        file: fi,
                        rule: "L8",
                        line,
                        message: "wall-clock timer `WallTimer` outside the realtime driver".into(),
                        hint: "wall time in crates/serve is confined to realtime.rs (the \
                               WallClock driver); lockstep serving code models time with \
                               TickClock::now_ns and never observes the host clock"
                            .into(),
                    });
                }
            }
        }
    }
}
