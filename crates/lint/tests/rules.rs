//! Rule-by-rule fixture tests, the workspace-clean gate, and seeded
//! negative tests that plant a violation in otherwise-clean sources.

use std::path::Path;

use nosw_lint::{lint_files, Allowlist, SourceFile, Violation};

const METRICS: &str = include_str!("../fixtures/metrics_mini.rs");
const L1: &str = include_str!("../fixtures/l1_direct_write.rs");
const L2_AUDIT: &str = include_str!("../fixtures/l2_audit_mini.rs");
const L2_ENGINE: &str = include_str!("../fixtures/l2_engine_emit.rs");
const L3: &str = include_str!("../fixtures/l3_instant.rs");
const L4: &str = include_str!("../fixtures/l4_spawn.rs");
const L5: &str = include_str!("../fixtures/l5_unwrap.rs");
const L5_ALLOWED: &str = include_str!("../fixtures/l5_allowed.rs");
const L6: &str = include_str!("../fixtures/l6_unsafe.rs");
const L7: &str = include_str!("../fixtures/l7_atomics.rs");
const L8: &str = include_str!("../fixtures/l8_blocking.rs");
const L8_WALL: &str = include_str!("../fixtures/l8_walltimer.rs");
const L9: &str = include_str!("../fixtures/l9_determinism.rs");
const L9_TIME: &str = include_str!("../fixtures/l9_time_seed.rs");
const L10: &str = include_str!("../fixtures/l10_ordering.rs");
const L11: &str = include_str!("../fixtures/l11_locks.rs");
const L12_METRICS: &str = include_str!("../fixtures/l12_metrics.rs");
const L12_AUDIT: &str = include_str!("../fixtures/l12_audit.rs");

fn file(path: &str, text: &str) -> SourceFile {
    SourceFile {
        path: path.to_string(),
        text: text.to_string(),
    }
}

fn metrics_file() -> SourceFile {
    file("crates/core/src/metrics.rs", METRICS)
}

fn rules_of(vs: &[Violation]) -> Vec<&'static str> {
    vs.iter().map(|v| v.rule).collect()
}

#[test]
fn l1_direct_field_writes_are_flagged_with_lines() {
    let vs = lint_files(
        &[metrics_file(), file("crates/core/src/engine.rs", L1)],
        &Allowlist::empty(),
    );
    let l1: Vec<_> = vs.iter().filter(|v| v.rule == "L1").collect();
    assert_eq!(l1.len(), 2, "{vs:?}");
    assert_eq!(l1[0].line, 5); // m.steps += 1;
    assert_eq!(l1[1].line, 7); // m.wall_ns = 7;
    assert!(l1[0].message.contains("steps"));
    assert!(!l1[0].hint.is_empty());
}

#[test]
fn l1_reads_and_metrics_module_writes_are_clean() {
    let own_writes = "impl RunMetrics { pub fn bump(&mut self) { self.steps += 1; } }\n";
    let mut m = metrics_file();
    m.text.push_str(own_writes);
    let reader = "pub fn read(m: &RunMetrics) -> u64 { m.steps + m.wall_ns }\n";
    let vs = lint_files(
        &[m, file("crates/bench/src/report.rs", reader)],
        &Allowlist::empty(),
    );
    assert!(vs.is_empty(), "{vs:?}");
}

#[test]
fn l2_unemitted_variant_is_flagged_at_its_declaration() {
    let vs = lint_files(
        &[
            file("crates/core/src/audit.rs", L2_AUDIT),
            file("crates/core/src/engine.rs", L2_ENGINE),
        ],
        &Allowlist::empty(),
    );
    assert_eq!(rules_of(&vs), vec!["L2"], "{vs:?}");
    assert!(vs[0].message.contains("Swap"));
    assert!(vs[0].message.contains("never emitted"));
    assert_eq!(vs[0].path, "crates/core/src/audit.rs");
    assert_eq!(vs[0].line, 9); // Swap's declaration line in the fixture
}

#[test]
fn l2_unhandled_variant_is_flagged() {
    // Strip the Swap arm from the handler: Swap becomes emitted-but-unhandled.
    let audit = L2_AUDIT.replace("TraceEvent::Swap { .. } => {}", "_ => {}");
    let engine = "pub fn run(emit: impl Fn(TraceEvent)) {\n    \
                  emit(TraceEvent::CoarseLoad { bytes: 1 });\n    \
                  emit(TraceEvent::Swap { bytes: 2 });\n}\n";
    let vs = lint_files(
        &[
            file("crates/core/src/audit.rs", &audit),
            file("crates/core/src/engine.rs", engine),
        ],
        &Allowlist::empty(),
    );
    assert_eq!(rules_of(&vs), vec!["L2"], "{vs:?}");
    assert!(vs[0].message.contains("Swap"));
    assert!(vs[0].message.contains("no handling site"));
}

#[test]
fn l3_raw_clock_reads_are_flagged_outside_exempt_crates() {
    let vs = lint_files(
        &[file("crates/core/src/engine.rs", L3)],
        &Allowlist::empty(),
    );
    assert_eq!(rules_of(&vs), vec!["L3"], "{vs:?}");
    assert_eq!(vs[0].line, 4);
    // The same source is fine in clock.rs and in the bench/cli crates.
    for exempt in [
        "crates/core/src/clock.rs",
        "crates/bench/src/runner.rs",
        "crates/cli/src/commands.rs",
    ] {
        let vs = lint_files(&[file(exempt, L3)], &Allowlist::empty());
        assert!(vs.is_empty(), "{exempt}: {vs:?}");
    }
}

#[test]
fn l8_blocking_and_clock_reads_are_flagged_in_serve() {
    let vs = lint_files(
        &[file("crates/serve/src/engine.rs", L8)],
        &Allowlist::empty(),
    );
    // Exactly one rule fires per site: L3 is waived in crates/serve, so the
    // clock read is reported once, as L8.
    assert_eq!(rules_of(&vs), vec!["L8", "L8"], "{vs:?}");
    assert_eq!(vs[0].line, 4);
    assert!(vs[0].message.contains("thread::sleep"));
    assert_eq!(vs[1].line, 8);
    assert!(vs[1].message.contains("Instant::now"));
}

#[test]
fn l8_is_scoped_to_the_serve_crate() {
    // In the measurement crates the same source is fine (L3-exempt, no L8).
    let vs = lint_files(
        &[file("crates/bench/src/runner.rs", L8)],
        &Allowlist::empty(),
    );
    assert!(vs.is_empty(), "{vs:?}");
    // In the engine only the ordinary L3 clock rule fires; the sleep is a
    // serving-specific concern.
    let vs = lint_files(
        &[file("crates/core/src/engine.rs", L8)],
        &Allowlist::empty(),
    );
    assert_eq!(rules_of(&vs), vec!["L3"], "{vs:?}");
}

#[test]
fn l8_wall_timers_are_confined_to_the_realtime_driver() {
    // A WallTimer anywhere else in the serving crate is flagged — the
    // `use` and the construction site both fire.
    let vs = lint_files(
        &[file("crates/serve/src/tick.rs", L8_WALL)],
        &Allowlist::empty(),
    );
    assert_eq!(rules_of(&vs), vec!["L8", "L8"], "{vs:?}");
    assert_eq!(vs.iter().map(|v| v.line).collect::<Vec<_>>(), vec![3, 6]);
    assert!(vs[0].message.contains("WallTimer"));
    assert!(vs[0].hint.contains("realtime.rs"));
    // The realtime driver is the sanctioned holder of wall time.
    let vs = lint_files(
        &[file("crates/serve/src/realtime.rs", L8_WALL)],
        &Allowlist::empty(),
    );
    assert!(vs.is_empty(), "{vs:?}");
    // ...but raw clock reads and sleeps stay banned even there: all wall
    // time funnels through the one WallTimer gateway, and pacing must be
    // interruptible (recv_timeout), never a blocking sleep.
    let vs = lint_files(
        &[file("crates/serve/src/realtime.rs", L8)],
        &Allowlist::empty(),
    );
    assert_eq!(rules_of(&vs), vec!["L8", "L8"], "{vs:?}");
}

#[test]
fn l4_thread_spawn_is_flagged_outside_sanctioned_modules() {
    let vs = lint_files(
        &[file("crates/core/src/engine.rs", L4)],
        &Allowlist::empty(),
    );
    assert_eq!(rules_of(&vs), vec!["L4"], "{vs:?}");
    assert_eq!(vs[0].line, 4);
    for exempt in ["crates/core/src/threaded.rs", "crates/core/src/parallel.rs"] {
        let vs = lint_files(&[file(exempt, L4)], &Allowlist::empty());
        assert!(vs.is_empty(), "{exempt}: {vs:?}");
    }
}

#[test]
fn l4_realtime_driver_may_spawn_its_tick_thread() {
    let vs = lint_files(
        &[file("crates/serve/src/realtime.rs", L4)],
        &Allowlist::empty(),
    );
    assert!(vs.is_empty(), "{vs:?}");
    // The exemption is the driver module alone, not the serving crate:
    // its siblings stay thread-confined.
    let vs = lint_files(
        &[file("crates/serve/src/engine.rs", L4)],
        &Allowlist::empty(),
    );
    assert_eq!(rules_of(&vs), vec!["L4"], "{vs:?}");
}

#[test]
fn l5_panicking_calls_flagged_in_library_code_only() {
    let vs = lint_files(
        &[file("crates/storage/src/file.rs", L5)],
        &Allowlist::empty(),
    );
    // unwrap (line 4), expect (line 8), panic! (line 12); the unwrap inside
    // #[cfg(test)] must NOT be flagged.
    assert_eq!(rules_of(&vs), vec!["L5", "L5", "L5"], "{vs:?}");
    assert_eq!(
        vs.iter().map(|v| v.line).collect::<Vec<_>>(),
        vec![4, 8, 12]
    );
    // The same source in a crate outside L5 scope is clean.
    let vs = lint_files(
        &[file("crates/apps/src/node2vec.rs", L5)],
        &Allowlist::empty(),
    );
    assert!(vs.is_empty(), "{vs:?}");
}

#[test]
fn l5_suppression_needs_an_allowlist_entry() {
    let f = file("crates/core/src/walk.rs", L5_ALLOWED);
    // Annotation present but unregistered: the suppression itself is flagged.
    let vs = lint_files(std::slice::from_ref(&f), &Allowlist::empty());
    assert_eq!(rules_of(&vs), vec!["ALLOW"], "{vs:?}");
    assert!(vs[0].message.contains("not registered"));
    // Registered with the right count: clean.
    let allow = Allowlist::parse("L5 crates/core/src/walk.rs 1").unwrap();
    let vs = lint_files(std::slice::from_ref(&f), &allow);
    assert!(vs.is_empty(), "{vs:?}");
    // Registered with a stale count: flagged.
    let allow = Allowlist::parse("L5 crates/core/src/walk.rs 2").unwrap();
    let vs = lint_files(&[f], &allow);
    assert_eq!(rules_of(&vs), vec!["ALLOW"], "{vs:?}");
}

#[test]
fn dangling_suppression_is_flagged() {
    let src = "pub fn fine() -> u32 {\n    // LINT-ALLOW(L5): nothing to suppress here.\n    \
               42\n}\n";
    let allow = Allowlist::parse("L5 crates/core/src/x.rs 1").unwrap();
    let vs = lint_files(&[file("crates/core/src/x.rs", src)], &allow);
    assert_eq!(rules_of(&vs), vec!["ALLOW"], "{vs:?}");
    assert!(vs[0].message.contains("dangling"));
}

#[test]
fn l6_unsafe_without_safety_comment_is_flagged() {
    let vs = lint_files(
        &[file("crates/storage/src/mmap.rs", L6)],
        &Allowlist::empty(),
    );
    let l6: Vec<_> = vs.iter().filter(|v| v.rule == "L6").collect();
    assert_eq!(l6.len(), 1, "{vs:?}");
    assert_eq!(l6[0].line, 9); // the undocumented block
}

#[test]
fn l6_unsafe_free_crate_must_forbid_unsafe_code() {
    let bare = "pub fn f() {}\n";
    let vs = lint_files(
        &[file("crates/graph/src/lib.rs", bare)],
        &Allowlist::empty(),
    );
    assert_eq!(rules_of(&vs), vec!["L6"], "{vs:?}");
    assert!(vs[0].message.contains("forbid"));
    let guarded = "#![forbid(unsafe_code)]\npub fn f() {}\n";
    let vs = lint_files(
        &[file("crates/graph/src/lib.rs", guarded)],
        &Allowlist::empty(),
    );
    assert!(vs.is_empty(), "{vs:?}");
}

#[test]
fn l7_atomics_flagged_outside_audited_core_modules() {
    let vs = lint_files(
        &[file("crates/core/src/engine.rs", L7)],
        &Allowlist::empty(),
    );
    // The `use` (line 3) and the field type (line 6); the atomics inside
    // #[cfg(test)] must NOT be flagged.
    assert_eq!(rules_of(&vs), vec!["L7", "L7"], "{vs:?}");
    assert_eq!(vs.iter().map(|v| v.line).collect::<Vec<_>>(), vec![3, 6]);
    assert!(vs[0].message.contains("AtomicU64"));
    // The audited modules and other crates may hold atomic state freely.
    for exempt in [
        "crates/core/src/metrics.rs",
        "crates/core/src/presample.rs",
        "crates/core/src/parallel.rs",
        "crates/apps/src/basic.rs",
    ] {
        let vs = lint_files(&[file(exempt, L7)], &Allowlist::empty());
        assert!(vs.is_empty(), "{exempt}: {vs:?}");
    }
}

#[test]
fn kernel_module_has_no_concurrency_exemptions() {
    // The StepKernel seam (crates/core/src/kernel.rs) is pure delegation:
    // it selects and drives an engine but owns no threads and no shared
    // state. Pin that it never grows L4/L7 exemptions — planting a spawn
    // or an atomic there must keep firing.
    let vs = lint_files(
        &[file("crates/core/src/kernel.rs", L4)],
        &Allowlist::empty(),
    );
    assert_eq!(rules_of(&vs), vec!["L4"], "{vs:?}");
    let vs = lint_files(
        &[file("crates/core/src/kernel.rs", L7)],
        &Allowlist::empty(),
    );
    assert_eq!(rules_of(&vs), vec!["L7", "L7"], "{vs:?}");
}

#[test]
fn seeded_violation_in_clean_sources_is_caught() {
    // Plant one stray metrics write into an otherwise-clean engine file and
    // one unwrap into a storage file; both must surface with exact lines.
    let engine = "pub fn drive(m: &mut RunMetrics) {\n    \
                  let budget = 4;\n    \
                  m.steps += budget;\n}\n";
    let storage = "pub fn read_header(xs: &[u8]) -> u8 {\n    \
                   *xs.first().unwrap()\n}\n";
    let vs = lint_files(
        &[
            metrics_file(),
            file("crates/core/src/engine.rs", engine),
            file("crates/storage/src/device.rs", storage),
        ],
        &Allowlist::empty(),
    );
    assert_eq!(rules_of(&vs), vec!["L1", "L5"], "{vs:?}");
    assert_eq!(
        (vs[0].path.as_str(), vs[0].line),
        ("crates/core/src/engine.rs", 3)
    );
    assert_eq!(
        (vs[1].path.as_str(), vs[1].line),
        ("crates/storage/src/device.rs", 2)
    );
}

#[test]
fn l9_flags_only_functions_reachable_from_a_digest_root() {
    let vs = lint_files(&[file("crates/core/src/walk.rs", L9)], &Allowlist::empty());
    // `unordered_helper` is reachable from `publish_digest`: its HashMap
    // (line 15, deduped across the two mentions) and thread_rng (line 17)
    // fire. `cold_path` is unreachable, so its HashSet (line 22) must not.
    assert_eq!(rules_of(&vs), vec!["L9", "L9"], "{vs:?}");
    assert_eq!(vs.iter().map(|v| v.line).collect::<Vec<_>>(), vec![15, 17]);
    assert!(vs[0].message.contains("HashMap"));
    assert!(vs[0].message.contains("unordered_helper"));
    assert!(vs[1].message.contains("thread_rng"));
    // The same nondeterminism with no digest/trace root in scope is not
    // L9's business (other rules own ambient hygiene).
    let vs = lint_files(&[file("crates/apps/src/sweep.rs", L9)], &Allowlist::empty());
    assert!(vs.is_empty(), "{vs:?}");
}

#[test]
fn l9_time_seeded_rng_is_flagged_behind_a_trace_emitting_root() {
    let vs = lint_files(
        &[file("crates/core/src/engine.rs", L9_TIME)],
        &Allowlist::empty(),
    );
    assert_eq!(rules_of(&vs), vec!["L9"], "{vs:?}");
    assert_eq!(vs[0].line, 11); // seed_from_u64(now_ns() ^ salt)
    assert!(vs[0].message.contains("time-seeded"));
    assert!(vs[0].message.contains("reseed"));
}

#[test]
fn l10_relaxed_and_undocumented_orderings_are_flagged() {
    // The ordering-protocol comment in the fixture must itself be
    // registered (two-way, like suppressions) for the run to focus on the
    // real sites.
    let allow = Allowlist::parse("ORDERING crates/core/src/parallel.rs 1").unwrap();
    let vs = lint_files(&[file("crates/core/src/parallel.rs", L10)], &allow);
    // Relaxed outside the sanctioned counter modules (line 9) and the
    // undocumented Acquire (line 13); the documented Release (line 19) is
    // clean.
    assert_eq!(rules_of(&vs), vec!["L10", "L10"], "{vs:?}");
    assert_eq!(vs.iter().map(|v| v.line).collect::<Vec<_>>(), vec![9, 13]);
    assert!(vs[0].message.contains("Relaxed"));
    assert!(vs[1].message.contains("Acquire"));
    assert!(vs[1].message.contains("protocol comment"));
}

#[test]
fn l10_relaxed_is_sanctioned_in_counter_modules() {
    let allow = Allowlist::parse("ORDERING crates/core/src/presample.rs 1").unwrap();
    let vs = lint_files(&[file("crates/core/src/presample.rs", L10)], &allow);
    // Same source in a sanctioned counter module: the Relaxed bump is
    // fine; only the undocumented Acquire remains.
    assert_eq!(rules_of(&vs), vec!["L10"], "{vs:?}");
    assert_eq!(vs[0].line, 13);
}

#[test]
fn l10_ordering_comments_must_be_registered() {
    let vs = lint_files(
        &[file("crates/core/src/parallel.rs", L10)],
        &Allowlist::empty(),
    );
    let allows: Vec<_> = vs.iter().filter(|v| v.rule == "ALLOW").collect();
    assert_eq!(allows.len(), 1, "{vs:?}");
    assert!(allows[0].message.contains("ordering protocol comment"));
    assert!(allows[0].message.contains("not registered"));
}

#[test]
fn l10_dangling_ordering_comment_is_flagged() {
    let src = "pub fn quiet() -> u32 {\n    \
               // ORDERING: pairs with nothing at all.\n    \
               42\n}\n";
    let allow = Allowlist::parse("ORDERING crates/core/src/engine.rs 1").unwrap();
    let vs = lint_files(&[file("crates/core/src/engine.rs", src)], &allow);
    assert_eq!(rules_of(&vs), vec!["L10"], "{vs:?}");
    assert_eq!(vs[0].line, 2);
    assert!(vs[0].message.contains("dangling"));
}

#[test]
fn l11_guards_crossing_loops_or_loader_calls_are_flagged() {
    let vs = lint_files(
        &[file("crates/core/src/parallel.rs", L11)],
        &Allowlist::empty(),
    );
    // `crosses_loop`'s guard (bound line 6) and `calls_loader`'s (line
    // 15); the scoped, explicitly-dropped, and value-extracting shapes
    // stay clean.
    assert_eq!(rules_of(&vs), vec!["L11", "L11"], "{vs:?}");
    assert_eq!(vs.iter().map(|v| v.line).collect::<Vec<_>>(), vec![6, 15]);
    assert!(vs[0].message.contains("guard `guard`"));
    assert!(vs[0].message.contains("`for` loop"));
    assert!(vs[1].message.contains("loader call `.request()`"));
}

#[test]
fn l11_is_scoped_to_the_runner_and_serve() {
    // The same guard shapes in a crate outside the runner/serve scope are
    // not L11's concern.
    let vs = lint_files(
        &[file("crates/storage/src/cache.rs", L11)],
        &Allowlist::empty(),
    );
    assert!(vs.is_empty(), "{vs:?}");
}

#[test]
fn l12_uncovered_counter_is_flagged_at_its_declaration() {
    let vs = lint_files(
        &[
            file("crates/core/src/metrics.rs", L12_METRICS),
            file("crates/core/src/audit.rs", L12_AUDIT),
        ],
        &Allowlist::empty(),
    );
    // The audit fixture reads steps and steps_on_block but never
    // swap_bytes; wall_ns (clock family) and fine_mode_at_step (not a
    // u64 counter) are exempt by type.
    assert_eq!(rules_of(&vs), vec!["L12"], "{vs:?}");
    assert_eq!(vs[0].path, "crates/core/src/metrics.rs");
    assert_eq!(vs[0].line, 13); // swap_bytes declaration
    assert!(vs[0].message.contains("swap_bytes"));
    assert!(vs[0].hint.contains("verify_metrics"));
    // Covering the counter in the audit module clears the rule.
    let covered =
        format!("{L12_AUDIT}\npub fn swap_law(m: &RunMetrics) -> u64 {{ m.swap_bytes }}\n");
    let vs = lint_files(
        &[
            file("crates/core/src/metrics.rs", L12_METRICS),
            file("crates/core/src/audit.rs", &covered),
        ],
        &Allowlist::empty(),
    );
    assert!(vs.is_empty(), "{vs:?}");
}

#[test]
fn stale_allowlist_entry_is_a_hard_error() {
    let allow = Allowlist::parse("L5 crates/core/src/gone.rs 1").unwrap();
    let vs = lint_files(
        &[file("crates/core/src/walk.rs", "pub fn f() {}\n")],
        &allow,
    );
    assert_eq!(rules_of(&vs), vec!["ALLOW"], "{vs:?}");
    assert!(vs[0].message.contains("stale allowlist entry"));
    assert!(vs[0].message.contains("crates/core/src/gone.rs"));
    assert!(vs[0].hint.contains("--prune-allow"));
}

#[test]
fn workspace_report_renders_json_and_a_canonical_allowlist() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let report = nosw_lint::lint_workspace(&root).expect("workspace scan");
    let json = report.to_json();
    assert!(json.contains("\"files_scanned\""));
    assert!(json.contains("\"violations\": []"));
    // The suggested allowlist round-trips through the parser and carries
    // every registered suppression in the canonical RULE PATH COUNT form.
    let parsed = Allowlist::parse(&report.suggested_allow).expect("suggested allowlist parses");
    assert!(!parsed.entries.is_empty());
    assert!(report
        .suggested_allow
        .contains("L11 crates/core/src/parallel.rs 1"));
}

#[test]
fn workspace_passes_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let report = nosw_lint::lint_workspace(&root).expect("workspace scan");
    assert!(
        report.files_scanned > 30,
        "scanned {}",
        report.files_scanned
    );
    let rendered: Vec<String> = report.violations.iter().map(|v| v.to_string()).collect();
    assert!(
        report.violations.is_empty(),
        "workspace not lint-clean:\n{}",
        rendered.join("\n")
    );
}
