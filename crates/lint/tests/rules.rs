//! Rule-by-rule fixture tests, the workspace-clean gate, and seeded
//! negative tests that plant a violation in otherwise-clean sources.

use std::path::Path;

use nosw_lint::{lint_files, Allowlist, SourceFile, Violation};

const METRICS: &str = include_str!("../fixtures/metrics_mini.rs");
const L1: &str = include_str!("../fixtures/l1_direct_write.rs");
const L2_AUDIT: &str = include_str!("../fixtures/l2_audit_mini.rs");
const L2_ENGINE: &str = include_str!("../fixtures/l2_engine_emit.rs");
const L3: &str = include_str!("../fixtures/l3_instant.rs");
const L4: &str = include_str!("../fixtures/l4_spawn.rs");
const L5: &str = include_str!("../fixtures/l5_unwrap.rs");
const L5_ALLOWED: &str = include_str!("../fixtures/l5_allowed.rs");
const L6: &str = include_str!("../fixtures/l6_unsafe.rs");
const L7: &str = include_str!("../fixtures/l7_atomics.rs");
const L8: &str = include_str!("../fixtures/l8_blocking.rs");

fn file(path: &str, text: &str) -> SourceFile {
    SourceFile {
        path: path.to_string(),
        text: text.to_string(),
    }
}

fn metrics_file() -> SourceFile {
    file("crates/core/src/metrics.rs", METRICS)
}

fn rules_of(vs: &[Violation]) -> Vec<&'static str> {
    vs.iter().map(|v| v.rule).collect()
}

#[test]
fn l1_direct_field_writes_are_flagged_with_lines() {
    let vs = lint_files(
        &[metrics_file(), file("crates/core/src/engine.rs", L1)],
        &Allowlist::empty(),
    );
    let l1: Vec<_> = vs.iter().filter(|v| v.rule == "L1").collect();
    assert_eq!(l1.len(), 2, "{vs:?}");
    assert_eq!(l1[0].line, 5); // m.steps += 1;
    assert_eq!(l1[1].line, 7); // m.wall_ns = 7;
    assert!(l1[0].message.contains("steps"));
    assert!(!l1[0].hint.is_empty());
}

#[test]
fn l1_reads_and_metrics_module_writes_are_clean() {
    let own_writes = "impl RunMetrics { pub fn bump(&mut self) { self.steps += 1; } }\n";
    let mut m = metrics_file();
    m.text.push_str(own_writes);
    let reader = "pub fn read(m: &RunMetrics) -> u64 { m.steps + m.wall_ns }\n";
    let vs = lint_files(
        &[m, file("crates/bench/src/report.rs", reader)],
        &Allowlist::empty(),
    );
    assert!(vs.is_empty(), "{vs:?}");
}

#[test]
fn l2_unemitted_variant_is_flagged_at_its_declaration() {
    let vs = lint_files(
        &[
            file("crates/core/src/audit.rs", L2_AUDIT),
            file("crates/core/src/engine.rs", L2_ENGINE),
        ],
        &Allowlist::empty(),
    );
    assert_eq!(rules_of(&vs), vec!["L2"], "{vs:?}");
    assert!(vs[0].message.contains("Swap"));
    assert!(vs[0].message.contains("never emitted"));
    assert_eq!(vs[0].path, "crates/core/src/audit.rs");
    assert_eq!(vs[0].line, 9); // Swap's declaration line in the fixture
}

#[test]
fn l2_unhandled_variant_is_flagged() {
    // Strip the Swap arm from the handler: Swap becomes emitted-but-unhandled.
    let audit = L2_AUDIT.replace("TraceEvent::Swap { .. } => {}", "_ => {}");
    let engine = "pub fn run(emit: impl Fn(TraceEvent)) {\n    \
                  emit(TraceEvent::CoarseLoad { bytes: 1 });\n    \
                  emit(TraceEvent::Swap { bytes: 2 });\n}\n";
    let vs = lint_files(
        &[
            file("crates/core/src/audit.rs", &audit),
            file("crates/core/src/engine.rs", engine),
        ],
        &Allowlist::empty(),
    );
    assert_eq!(rules_of(&vs), vec!["L2"], "{vs:?}");
    assert!(vs[0].message.contains("Swap"));
    assert!(vs[0].message.contains("no handling site"));
}

#[test]
fn l3_raw_clock_reads_are_flagged_outside_exempt_crates() {
    let vs = lint_files(
        &[file("crates/core/src/engine.rs", L3)],
        &Allowlist::empty(),
    );
    assert_eq!(rules_of(&vs), vec!["L3"], "{vs:?}");
    assert_eq!(vs[0].line, 4);
    // The same source is fine in clock.rs and in the bench/cli crates.
    for exempt in [
        "crates/core/src/clock.rs",
        "crates/bench/src/runner.rs",
        "crates/cli/src/commands.rs",
    ] {
        let vs = lint_files(&[file(exempt, L3)], &Allowlist::empty());
        assert!(vs.is_empty(), "{exempt}: {vs:?}");
    }
}

#[test]
fn l8_blocking_and_clock_reads_are_flagged_in_serve() {
    let vs = lint_files(
        &[file("crates/serve/src/engine.rs", L8)],
        &Allowlist::empty(),
    );
    // Exactly one rule fires per site: L3 is waived in crates/serve, so the
    // clock read is reported once, as L8.
    assert_eq!(rules_of(&vs), vec!["L8", "L8"], "{vs:?}");
    assert_eq!(vs[0].line, 4);
    assert!(vs[0].message.contains("thread::sleep"));
    assert_eq!(vs[1].line, 8);
    assert!(vs[1].message.contains("Instant::now"));
}

#[test]
fn l8_is_scoped_to_the_serve_crate() {
    // In the measurement crates the same source is fine (L3-exempt, no L8).
    let vs = lint_files(
        &[file("crates/bench/src/runner.rs", L8)],
        &Allowlist::empty(),
    );
    assert!(vs.is_empty(), "{vs:?}");
    // In the engine only the ordinary L3 clock rule fires; the sleep is a
    // serving-specific concern.
    let vs = lint_files(
        &[file("crates/core/src/engine.rs", L8)],
        &Allowlist::empty(),
    );
    assert_eq!(rules_of(&vs), vec!["L3"], "{vs:?}");
}

#[test]
fn l4_thread_spawn_is_flagged_outside_sanctioned_modules() {
    let vs = lint_files(
        &[file("crates/core/src/engine.rs", L4)],
        &Allowlist::empty(),
    );
    assert_eq!(rules_of(&vs), vec!["L4"], "{vs:?}");
    assert_eq!(vs[0].line, 4);
    for exempt in ["crates/core/src/threaded.rs", "crates/core/src/parallel.rs"] {
        let vs = lint_files(&[file(exempt, L4)], &Allowlist::empty());
        assert!(vs.is_empty(), "{exempt}: {vs:?}");
    }
}

#[test]
fn l5_panicking_calls_flagged_in_library_code_only() {
    let vs = lint_files(
        &[file("crates/storage/src/file.rs", L5)],
        &Allowlist::empty(),
    );
    // unwrap (line 4), expect (line 8), panic! (line 12); the unwrap inside
    // #[cfg(test)] must NOT be flagged.
    assert_eq!(rules_of(&vs), vec!["L5", "L5", "L5"], "{vs:?}");
    assert_eq!(
        vs.iter().map(|v| v.line).collect::<Vec<_>>(),
        vec![4, 8, 12]
    );
    // The same source in a crate outside L5 scope is clean.
    let vs = lint_files(
        &[file("crates/apps/src/node2vec.rs", L5)],
        &Allowlist::empty(),
    );
    assert!(vs.is_empty(), "{vs:?}");
}

#[test]
fn l5_suppression_needs_an_allowlist_entry() {
    let f = file("crates/core/src/walk.rs", L5_ALLOWED);
    // Annotation present but unregistered: the suppression itself is flagged.
    let vs = lint_files(std::slice::from_ref(&f), &Allowlist::empty());
    assert_eq!(rules_of(&vs), vec!["ALLOW"], "{vs:?}");
    assert!(vs[0].message.contains("not registered"));
    // Registered with the right count: clean.
    let allow = Allowlist::parse("L5 crates/core/src/walk.rs 1").unwrap();
    let vs = lint_files(std::slice::from_ref(&f), &allow);
    assert!(vs.is_empty(), "{vs:?}");
    // Registered with a stale count: flagged.
    let allow = Allowlist::parse("L5 crates/core/src/walk.rs 2").unwrap();
    let vs = lint_files(&[f], &allow);
    assert_eq!(rules_of(&vs), vec!["ALLOW"], "{vs:?}");
}

#[test]
fn dangling_suppression_is_flagged() {
    let src = "pub fn fine() -> u32 {\n    // LINT-ALLOW(L5): nothing to suppress here.\n    \
               42\n}\n";
    let allow = Allowlist::parse("L5 crates/core/src/x.rs 1").unwrap();
    let vs = lint_files(&[file("crates/core/src/x.rs", src)], &allow);
    assert_eq!(rules_of(&vs), vec!["ALLOW"], "{vs:?}");
    assert!(vs[0].message.contains("dangling"));
}

#[test]
fn l6_unsafe_without_safety_comment_is_flagged() {
    let vs = lint_files(
        &[file("crates/storage/src/mmap.rs", L6)],
        &Allowlist::empty(),
    );
    let l6: Vec<_> = vs.iter().filter(|v| v.rule == "L6").collect();
    assert_eq!(l6.len(), 1, "{vs:?}");
    assert_eq!(l6[0].line, 9); // the undocumented block
}

#[test]
fn l6_unsafe_free_crate_must_forbid_unsafe_code() {
    let bare = "pub fn f() {}\n";
    let vs = lint_files(
        &[file("crates/graph/src/lib.rs", bare)],
        &Allowlist::empty(),
    );
    assert_eq!(rules_of(&vs), vec!["L6"], "{vs:?}");
    assert!(vs[0].message.contains("forbid"));
    let guarded = "#![forbid(unsafe_code)]\npub fn f() {}\n";
    let vs = lint_files(
        &[file("crates/graph/src/lib.rs", guarded)],
        &Allowlist::empty(),
    );
    assert!(vs.is_empty(), "{vs:?}");
}

#[test]
fn l7_atomics_flagged_outside_audited_core_modules() {
    let vs = lint_files(
        &[file("crates/core/src/engine.rs", L7)],
        &Allowlist::empty(),
    );
    // The `use` (line 3) and the field type (line 6); the atomics inside
    // #[cfg(test)] must NOT be flagged.
    assert_eq!(rules_of(&vs), vec!["L7", "L7"], "{vs:?}");
    assert_eq!(vs.iter().map(|v| v.line).collect::<Vec<_>>(), vec![3, 6]);
    assert!(vs[0].message.contains("AtomicU64"));
    // The audited modules and other crates may hold atomic state freely.
    for exempt in [
        "crates/core/src/metrics.rs",
        "crates/core/src/presample.rs",
        "crates/core/src/parallel.rs",
        "crates/apps/src/basic.rs",
    ] {
        let vs = lint_files(&[file(exempt, L7)], &Allowlist::empty());
        assert!(vs.is_empty(), "{exempt}: {vs:?}");
    }
}

#[test]
fn kernel_module_has_no_concurrency_exemptions() {
    // The StepKernel seam (crates/core/src/kernel.rs) is pure delegation:
    // it selects and drives an engine but owns no threads and no shared
    // state. Pin that it never grows L4/L7 exemptions — planting a spawn
    // or an atomic there must keep firing.
    let vs = lint_files(
        &[file("crates/core/src/kernel.rs", L4)],
        &Allowlist::empty(),
    );
    assert_eq!(rules_of(&vs), vec!["L4"], "{vs:?}");
    let vs = lint_files(
        &[file("crates/core/src/kernel.rs", L7)],
        &Allowlist::empty(),
    );
    assert_eq!(rules_of(&vs), vec!["L7", "L7"], "{vs:?}");
}

#[test]
fn seeded_violation_in_clean_sources_is_caught() {
    // Plant one stray metrics write into an otherwise-clean engine file and
    // one unwrap into a storage file; both must surface with exact lines.
    let engine = "pub fn drive(m: &mut RunMetrics) {\n    \
                  let budget = 4;\n    \
                  m.steps += budget;\n}\n";
    let storage = "pub fn read_header(xs: &[u8]) -> u8 {\n    \
                   *xs.first().unwrap()\n}\n";
    let vs = lint_files(
        &[
            metrics_file(),
            file("crates/core/src/engine.rs", engine),
            file("crates/storage/src/device.rs", storage),
        ],
        &Allowlist::empty(),
    );
    assert_eq!(rules_of(&vs), vec!["L1", "L5"], "{vs:?}");
    assert_eq!(
        (vs[0].path.as_str(), vs[0].line),
        ("crates/core/src/engine.rs", 3)
    );
    assert_eq!(
        (vs[1].path.as_str(), vs[1].line),
        ("crates/storage/src/device.rs", 2)
    );
}

#[test]
fn workspace_passes_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let report = nosw_lint::lint_workspace(&root).expect("workspace scan");
    assert!(
        report.files_scanned > 30,
        "scanned {}",
        report.files_scanned
    );
    let rendered: Vec<String> = report.violations.iter().map(|v| v.to_string()).collect();
    assert!(
        report.violations.is_empty(),
        "workspace not lint-clean:\n{}",
        rendered.join("\n")
    );
}
