//! Fixture: a justified panic, suppressed by an annotation. With a
//! matching allowlist entry the file is clean; with an empty allowlist the
//! unregistered suppression itself is flagged.

pub fn must(x: Option<u32>) -> u32 {
    // LINT-ALLOW(L5): fixture justification — the caller guarantees Some.
    x.expect("caller guarantees Some")
}
