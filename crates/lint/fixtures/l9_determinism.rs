//! Fixture: nondeterminism on a digest-reachable path. `publish_digest`
//! is a root (its name mentions the digest); it calls `unordered_helper`,
//! whose HashMap and thread_rng must be flagged. `cold_path` is not
//! reachable from any root, so its HashSet must NOT be flagged — that is
//! the symbol-aware half of the rule.

use std::collections::HashMap;

pub fn publish_digest(result: u64) -> u64 {
    let mixed = result ^ (result >> 31);
    unordered_helper(mixed)
}

fn unordered_helper(seed: u64) -> u64 {
    let mut m: HashMap<u64, u64> = HashMap::new();
    m.insert(seed, 1);
    let noise = thread_rng();
    m.len() as u64 + noise
}

fn cold_path() -> usize {
    let mut s = std::collections::HashSet::new();
    s.insert(1u32);
    s.len()
}
