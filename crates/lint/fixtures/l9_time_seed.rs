//! Fixture: a trace-emitting root whose helper seeds its RNG from the
//! clock. The emit makes `emit_round` a root; `reseed` is reachable and
//! its time-derived seed must be flagged.

pub fn emit_round(trace: &mut Trace) {
    trace.emit(|| TraceEvent::RunEnd { steps: 0 });
    reseed(7);
}

fn reseed(salt: u64) -> WalkRng {
    WalkRng::seed_from_u64(now_ns() ^ salt)
}
