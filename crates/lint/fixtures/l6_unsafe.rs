//! Fixture: one documented unsafe block and one undocumented.

pub fn documented(xs: &[u8]) -> u8 {
    // SAFETY: the caller guarantees xs is non-empty.
    unsafe { *xs.get_unchecked(0) }
}

pub fn undocumented(xs: &[u8]) -> u8 {
    unsafe { *xs.get_unchecked(0) }
}
