//! Fixture: holds a WallTimer in serving code (permitted only in the
//! realtime driver module).
use noswalker_core::WallTimer;

pub fn paced() -> u64 {
    let wall = WallTimer::start();
    wall.elapsed_ns()
}
