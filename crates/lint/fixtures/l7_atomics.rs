//! Fixture: declares atomic state outside the audited concurrency modules.

use std::sync::atomic::AtomicU64;

pub struct Rogue {
    pub counter: AtomicU64,
}

#[cfg(test)]
mod tests {
    use std::sync::atomic::AtomicU32;

    #[test]
    fn test_code_is_exempt() {
        let _ = AtomicU32::new(0);
    }
}
