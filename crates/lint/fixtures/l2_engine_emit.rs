//! Fixture: an engine that emits only CoarseLoad, leaving Swap unemitted.

pub fn run(emit: impl Fn(TraceEvent)) {
    emit(TraceEvent::CoarseLoad { bytes: 1 });
}
