//! Fixture: a miniature stand-in for the real metrics module. Tests pass
//! this under the path `crates/core/src/metrics.rs` so the L1 field set is
//! parsed from it.

/// Miniature RunMetrics.
pub struct RunMetrics {
    /// Total steps.
    pub steps: u64,
    /// Steps taken on resident blocks.
    pub steps_on_block: u64,
    /// Wall-clock nanoseconds.
    pub wall_ns: u64,
}
