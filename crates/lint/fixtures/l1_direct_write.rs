//! Fixture: writes a RunMetrics field directly instead of going through a
//! tracked helper.

pub fn bump(m: &mut RunMetrics) {
    m.steps += 1;
    let _read_is_fine = m.steps_on_block;
    m.wall_ns = 7;
}
