//! Fixture: panicking calls in library code.

pub fn first(xs: &[u32]) -> u32 {
    *xs.first().unwrap()
}

pub fn must(x: Option<u32>) -> u32 {
    x.expect("fixture")
}

pub fn boom() -> ! {
    panic!("fixture")
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_in_tests_is_fine() {
        let v: Option<u32> = Some(1);
        assert_eq!(v.unwrap(), 1);
    }
}
