//! Fixture: a miniature audit module whose laws cover `steps` and
//! `steps_on_block` but never read `swap_bytes`.

pub fn verify_metrics(m: &RunMetrics) -> bool {
    m.steps == m.steps_on_block
}
