//! Fixture: a miniature TraceEvent definition with handling for both
//! variants. The engine fixture only emits CoarseLoad, so Swap trips L2.

/// Miniature trace event.
pub enum TraceEvent {
    /// A coarse-grained block load.
    CoarseLoad { bytes: u64 },
    /// A swap.
    Swap { bytes: u64 },
}

/// Handles every variant (the audit side of L2).
pub fn handle(e: &TraceEvent) {
    match e {
        TraceEvent::CoarseLoad { .. } => {}
        TraceEvent::Swap { .. } => {}
    }
}
