//! Fixture: lock-guard live ranges. `crosses_loop` and `calls_loader`
//! violate the publish/acquire-only invariant; `scoped_ok` and
//! `explicit_drop_ok` bound the guard correctly and must stay clean.

pub fn crosses_loop(slots: &[Slot]) -> u64 {
    let guard = slots[0].published.lock();
    let mut sum = 0;
    for v in guard.iter() {
        sum += v;
    }
    sum
}

pub fn calls_loader(loader: &Loader, gate: &Mutex<()>) {
    let _gate = gate.try_lock();
    loader.request(0);
}

pub fn scoped_ok(gate: &Mutex<()>, n: u32) -> u32 {
    {
        let g = gate.lock();
        publish(&g);
    }
    let mut done = 0;
    for _ in 0..n {
        done += step();
    }
    done
}

pub fn explicit_drop_ok(gate: &Mutex<()>) {
    let g = gate.lock();
    publish(&g);
    drop(g);
    while pending() {
        step();
    }
}

pub fn value_extraction_is_not_a_guard(slot: &Slot) -> u64 {
    let snapshot = slot.published.lock().clone();
    let mut sum = 0;
    for v in snapshot.iter() {
        sum += v;
    }
    sum
}
