//! Fixture: the three L10 shapes. A Relaxed counter bump (fine in the
//! sanctioned modules, flagged elsewhere), an undocumented Acquire, and a
//! Release carrying an anchored protocol comment (clean once the comment
//! is registered under rule ORDERING).

use std::sync::atomic::{AtomicU64, Ordering};

pub fn relaxed_bump(c: &AtomicU64) {
    c.fetch_add(1, Ordering::Relaxed);
}

pub fn undocumented_acquire(c: &AtomicU64) -> u64 {
    c.load(Ordering::Acquire)
}

pub fn documented_release(c: &AtomicU64) {
    // ORDERING: the store publishes the filled buffer; it pairs with the
    // Acquire load in `undocumented_acquire` on the reader side.
    c.store(1, Ordering::Release);
}
