//! Fixture: spawns a thread outside the sanctioned concurrency modules.

pub fn go() {
    let h = std::thread::spawn(|| 42);
    let _ = h.join();
}
