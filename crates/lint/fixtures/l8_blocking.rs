//! Fixture: blocks and reads the wall clock inside the serving crate.

pub fn pace() {
    std::thread::sleep(std::time::Duration::from_millis(1));
}

pub fn stamp() -> std::time::Instant {
    std::time::Instant::now()
}
