//! Fixture: a miniature metrics module for the audit-coverage rule. The
//! audit fixture references `steps` and `steps_on_block` but not
//! `swap_bytes`, so `swap_bytes` trips L12. `wall_ns` (a clock aggregate)
//! and `fine_mode_at_step` (not a `u64` counter) are exempt by type.

/// Miniature RunMetrics.
pub struct RunMetrics {
    /// Total steps.
    pub steps: u64,
    /// Steps taken on resident blocks.
    pub steps_on_block: u64,
    /// Bytes of walker state swapped out.
    pub swap_bytes: u64,
    /// Wall-clock nanoseconds.
    pub wall_ns: u64,
    /// Step index of the coarse-to-fine switch, if it happened.
    pub fine_mode_at_step: Option<u64>,
}
