//! Fixture: reads the wall clock directly instead of using WallTimer.

pub fn elapsed() -> std::time::Duration {
    let start = std::time::Instant::now();
    start.elapsed()
}
