//! Multi-query serving: mixed application classes sharing one
//! [`ServeEngine`], per-query conservation laws, deadline-miss flagging,
//! and graceful shedding under an oversubscribed burst. These run in
//! release builds too — the laws must hold without the engines' internal
//! `debug_assertions` hook.

use noswalker::core::audit::{audit_queries, MemorySink};
use noswalker::core::{OnDiskGraph, QuerySpec, StaticQuerySource};
use noswalker::graph::generators::{self, RmatParams};
use noswalker::graph::Csr;
use noswalker::serve::{AdmissionOptions, Backend, ServeEngine, ServeOptions, ServeReport};
use noswalker::storage::{MemoryBudget, SimSsd, SsdProfile};
use std::sync::Arc;

const LENGTH: u32 = 8;

fn graph() -> Csr {
    generators::rmat(10, 10, RmatParams::default(), 41)
}

fn engine(csr: &Csr, opts: ServeOptions) -> ServeEngine {
    let device = Arc::new(SimSsd::new(SsdProfile::nvme_p4618()));
    let g = Arc::new(OnDiskGraph::store(csr, device, csr.edge_region_bytes() / 16).unwrap());
    let budget = MemoryBudget::new((csr.edge_region_bytes() / 4).max(64 << 10));
    ServeEngine::new(g, budget, opts)
}

fn spec(
    id: u64,
    class: &str,
    walkers: u64,
    arrival_ns: u64,
    deadline_ns: Option<u64>,
) -> QuerySpec {
    QuerySpec {
        id,
        class: class.to_string(),
        walkers,
        walk_length: LENGTH,
        deadline_ns,
        arrival_ns,
    }
}

/// Every non-shed query must satisfy the per-query conservation law:
/// walkers issued = completed + cancelled, and issued never exceeds the
/// query's budget.
fn check_conservation(report: &ServeReport) {
    audit_queries(&report.query_stats()).assert_clean();
    for o in &report.outcomes {
        if o.shed {
            assert_eq!(o.stats.issued, 0, "query {}: shed but issued", o.id);
            continue;
        }
        assert_eq!(
            o.stats.issued,
            o.stats.completed + o.stats.cancelled,
            "query {}: issued != completed + cancelled",
            o.id
        );
        assert!(o.stats.issued <= o.stats.budget, "query {}", o.id);
    }
}

#[test]
fn mixed_app_queries_share_one_engine_on_every_backend() {
    let csr = graph();
    let specs = vec![
        spec(1, "ppr:7", 120, 0, None),
        spec(2, "basic", 90, 50, None),
        spec(3, "deepwalk:0", 80, 100, None),
        spec(4, "rwr:7:0.2", 70, 150, None),
    ];
    let mut digests: Vec<Vec<(u64, u64)>> = Vec::new();
    for backend in [Backend::Seq, Backend::Par] {
        let e = engine(
            &csr,
            ServeOptions {
                backend,
                ..ServeOptions::default()
            },
        );
        let mut src = StaticQuerySource::new(specs.clone());
        let report = e.run(&mut src, None).expect("serve");

        assert_eq!(report.completed_count(), 4, "{backend:?}");
        assert_eq!(report.shed_count(), 0, "{backend:?}");
        check_conservation(&report);
        // Without deadlines every walker runs to completion.
        for o in &report.outcomes {
            let want = specs.iter().find(|s| s.id == o.id).unwrap().walkers;
            assert_eq!(o.stats.completed, want, "query {} ({backend:?})", o.id);
            assert!(!o.degraded && !o.deadline_missed, "query {}", o.id);
            assert!(o.latency_ns.is_some(), "query {}", o.id);
        }
        // One latency histogram per distinct class, each with one sample.
        assert_eq!(report.histograms.len(), 4);
        assert!(report.histograms.values().all(|h| h.count() == 1));
        // The global counters agree with the per-query stats.
        let issued: u64 = report.outcomes.iter().map(|o| o.stats.issued).sum();
        assert_eq!(
            report.metrics.walkers_finished + report.metrics.walkers_cancelled,
            issued
        );
        let mut d: Vec<(u64, u64)> = report.outcomes.iter().map(|o| (o.id, o.digest)).collect();
        d.sort_unstable();
        digests.push(d);
    }
    // Both backends walk the same trajectories under the same seed.
    assert_eq!(digests[0], digests[1], "cross-backend digest parity");
}

#[test]
fn impossible_deadlines_are_flagged_and_conserve_walkers() {
    let csr = graph();
    let e = engine(&csr, ServeOptions::default());
    // Query 1 cannot finish by 1ns; query 2 is unconstrained.
    let mut src = StaticQuerySource::new(vec![
        spec(1, "ppr:7", 4000, 0, Some(1)),
        spec(2, "basic", 60, 0, None),
    ]);
    let report = e.run(&mut src, None).expect("serve");
    check_conservation(&report);

    let o1 = report.outcomes.iter().find(|o| o.id == 1).unwrap();
    assert!(o1.deadline_missed, "impossible deadline must be flagged");
    assert!(o1.degraded, "partial results must be flagged degraded");
    assert!(
        o1.stats.issued < o1.stats.budget || o1.stats.cancelled > 0,
        "deadline must cut the query short"
    );
    let o2 = report.outcomes.iter().find(|o| o.id == 2).unwrap();
    assert!(!o2.deadline_missed && !o2.degraded);
    assert_eq!(o2.stats.completed, 60);
    assert_eq!(report.deadline_miss_count(), 1);
}

#[test]
fn oversubscribed_burst_sheds_without_deadlock_on_every_backend() {
    let csr = graph();
    // Per backend: (completed, shed, sorted (id, digest) pairs).
    type BurstSummary = (u64, u64, Vec<(u64, u64)>);
    let mut summaries: Vec<BurstSummary> = Vec::new();
    for backend in [Backend::Seq, Backend::Par] {
        let e = engine(
            &csr,
            ServeOptions {
                admission: AdmissionOptions {
                    max_pending: 2,
                    retry_after_ns: 500,
                    ..AdmissionOptions::default()
                },
                backend,
                ..ServeOptions::default()
            },
        );
        // 12 queries all arriving at t=0 against a pending queue of 2: the
        // burst must shed (bounded queue), the rest must complete, and the
        // run must terminate.
        let specs: Vec<QuerySpec> = (1..=12).map(|i| spec(i, "basic", 200, 0, None)).collect();
        let mut sink = MemorySink::new();
        let mut src = StaticQuerySource::new(specs);
        let report = e.run(&mut src, Some(&mut sink)).expect("serve");
        check_conservation(&report);

        assert!(report.shed_count() > 0, "bounded queue must shed the burst");
        assert!(report.completed_count() > 0, "shedding must not starve");
        assert_eq!(
            report.completed_count() + report.shed_count(),
            12,
            "every query is either served or shed"
        );
        for o in report.outcomes.iter().filter(|o| o.shed) {
            assert!(o.retry_after_ns.unwrap_or(0) > 0, "shed carries retry hint");
        }
        // The trace records both admission decisions.
        let kinds: Vec<&str> = sink.events.iter().map(|e| e.kind()).collect();
        assert!(kinds.contains(&"query_shed"), "{kinds:?}");
        assert!(kinds.contains(&"query_completed"), "{kinds:?}");
        let mut d: Vec<(u64, u64)> = report
            .outcomes
            .iter()
            .filter(|o| !o.shed)
            .map(|o| (o.id, o.digest))
            .collect();
        d.sort_unstable();
        summaries.push((report.completed_count(), report.shed_count(), d));
    }
    // The burst arrives before any round runs, so the admission decisions
    // — and the surviving queries' trajectories — are backend-invariant.
    assert_eq!(summaries[0], summaries[1], "cross-backend burst parity");
}

#[test]
fn tight_deadlines_cancel_mid_run_and_count_cancellations() {
    let csr = graph();
    let e = engine(&csr, ServeOptions::default());
    // A deadline past admission but far too early for 3000 walkers:
    // walkers get issued, then cancelled mid-run by the step allowance.
    let mut src = StaticQuerySource::new(vec![spec(1, "deepwalk:0", 3000, 0, Some(40_000))]);
    let report = e.run(&mut src, None).expect("serve");
    check_conservation(&report);

    let o = &report.outcomes[0];
    assert!(o.degraded, "partial results must be degraded");
    assert!(o.deadline_missed);
    assert!(
        o.stats.cancelled > 0 || o.stats.issued < o.stats.budget,
        "deadline must cancel or stop issuing: {:?}",
        o.stats
    );
    assert_eq!(report.metrics.walkers_cancelled, o.stats.cancelled);
}
