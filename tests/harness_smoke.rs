//! End-to-end smoke of the benchmark harness at tiny scale: every
//! experiment must run and produce rows.

use noswalker_bench::datasets::Scale;
use noswalker_bench::experiments;

#[test]
fn tiny_scale_key_experiments_run() {
    for id in ["table1", "fig2", "fig14"] {
        assert_eq!(experiments::dispatch(id, Scale::Tiny), Some(true), "{id}");
    }
}

#[test]
fn unknown_experiment_is_rejected() {
    assert_eq!(experiments::dispatch("fig99", Scale::Tiny), None);
}

/// The full suite at tiny scale (slower; run with `--ignored`). `Some(true)`
/// means every experiment ran AND every gated bench (throughput, with its
/// ratcheted ratio floor and stall ceiling) passed its acceptance.
#[test]
#[ignore = "runs every experiment; ~a minute"]
fn tiny_scale_full_suite_runs() {
    assert_eq!(experiments::dispatch("all", Scale::Tiny), Some(true));
}

#[test]
fn tiny_datasets_have_paper_shapes() {
    use noswalker::graph::stats::DegreeStats;
    let k30 = noswalker_bench::datasets::get("k30", Scale::Tiny);
    let g12 = noswalker_bench::datasets::get("g12", Scale::Tiny);
    let a27 = noswalker_bench::datasets::get("a27", Scale::Tiny);
    let (sk, sg, sa) = (
        DegreeStats::of(&k30.csr),
        DegreeStats::of(&g12.csr),
        DegreeStats::of(&a27.csr),
    );
    // Power-law vs uniform vs flat power-law ordering (paper §4.1).
    assert!(sk.gini > sa.gini);
    assert!(sa.gini > sg.gini);
    assert_eq!(sg.max_degree, 12);
    // α2.7's average degree tracks the paper's ~6.4.
    assert!((4.0..9.0).contains(&sa.avg_degree), "{}", sa.avg_degree);
}
