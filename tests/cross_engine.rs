//! Cross-engine correctness: the same application must produce
//! *statistically equivalent* results on every engine — scheduling policy
//! must never change walk semantics.

use noswalker::apps::{BasicRw, GraphletConcentration, Node2Vec, Ppr};
use noswalker::baselines::{DrunkardMob, GraSorw, GraphWalker, Graphene, InMemory};
use noswalker::core::{EngineOptions, NosWalkerEngine, OnDiskGraph, RunMetrics, Walk};
use noswalker::graph::generators::{self, RmatParams};
use noswalker::graph::Csr;
use noswalker::storage::{MemoryBudget, SimSsd, SsdProfile};
use std::sync::Arc;

fn graph() -> Csr {
    generators::rmat(11, 12, RmatParams::default(), 77)
}

fn on_device(csr: &Csr) -> Arc<OnDiskGraph> {
    let device = Arc::new(SimSsd::new(SsdProfile::nvme_p4618()));
    Arc::new(OnDiskGraph::store(csr, device, csr.edge_region_bytes() / 16).unwrap())
}

fn budget() -> Arc<MemoryBudget> {
    MemoryBudget::new(1 << 20)
}

/// Runs `app` on engine `name`, returning its metrics.
fn run_engine<A: Walk + 'static>(name: &str, app: Arc<A>, csr: &Csr) -> RunMetrics {
    let opts = EngineOptions::default();
    match name {
        "noswalker" => NosWalkerEngine::new(app, on_device(csr), opts, budget())
            .run(5)
            .unwrap(),
        "drunkardmob" => DrunkardMob::new(app, on_device(csr), opts, budget())
            .run(5)
            .unwrap(),
        "graphwalker" => GraphWalker::new(app, on_device(csr), opts, budget())
            .run(5)
            .unwrap(),
        "graphene" => Graphene::new(app, on_device(csr), opts, budget())
            .run(5)
            .unwrap(),
        "inmemory" => {
            InMemory::new(app, Arc::new(csr.clone()), opts, SsdProfile::nvme_p4618()).run(5)
        }
        other => panic!("unknown engine {other}"),
    }
}

const ENGINES: [&str; 5] = [
    "noswalker",
    "drunkardmob",
    "graphwalker",
    "graphene",
    "inmemory",
];

#[test]
fn every_engine_finishes_every_walker() {
    let csr = graph();
    for name in ENGINES {
        let app = Arc::new(BasicRw::new(3000, 8, csr.num_vertices()));
        let m = run_engine(name, Arc::clone(&app), &csr);
        assert_eq!(m.walkers_finished, 3000, "{name}");
        assert!(m.steps > 0, "{name}");
        assert_eq!(m.steps, app.steps_taken(), "{name}: metrics vs app");
    }
}

#[test]
fn steps_conserved_on_dead_end_free_graph() {
    // Uniform graph: every vertex has out-degree 6, so every walker takes
    // exactly its full length.
    let csr = generators::uniform_degree(1 << 11, 6, 13);
    for name in ENGINES {
        let app = Arc::new(BasicRw::new(2000, 7, csr.num_vertices()));
        let m = run_engine(name, app, &csr);
        assert_eq!(m.steps, 2000 * 7, "{name}");
    }
}

/// L1 distance between two normalized visit distributions.
fn l1(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| (x - y).abs()).sum()
}

#[test]
fn ppr_distribution_agrees_between_noswalker_and_in_memory() {
    let csr = graph();
    let sources = vec![1u32, 17, 99];
    let make = || Arc::new(Ppr::new(sources.clone(), 800, 10, csr.num_vertices()));

    let nw_app = make();
    run_engine("noswalker", Arc::clone(&nw_app), &csr);
    let mem_app = make();
    run_engine("inmemory", Arc::clone(&mem_app), &csr);

    let d = l1(&nw_app.estimate(), &mem_app.estimate());
    // Two independent Monte-Carlo estimates of the same distribution;
    // with 24k walk-steps each the L1 gap stays well below a constant.
    assert!(d < 0.25, "L1 distance too large: {d}");

    // The heaviest hub must agree.
    assert_eq!(nw_app.top_k(1)[0].0, mem_app.top_k(1)[0].0);
}

#[test]
fn graphlet_concentration_agrees_across_engines() {
    let csr = generators::rmat(11, 16, RmatParams::default(), 3);
    let mut estimates = Vec::new();
    for name in ["noswalker", "graphwalker", "inmemory"] {
        let app = Arc::new(GraphletConcentration::new(20_000, csr.num_vertices()));
        run_engine(name, Arc::clone(&app), &csr);
        assert_eq!(app.completed(), app.completed());
        estimates.push((name, app.concentration()));
    }
    let (_, base) = estimates[0];
    for &(name, c) in &estimates[1..] {
        assert!(
            (c - base).abs() < 0.05,
            "{name} concentration {c} vs noswalker {base}"
        );
    }
}

#[test]
fn node2vec_agrees_between_noswalker_and_grasorw() {
    let csr = generators::rmat(10, 8, RmatParams::default(), 21).to_undirected();
    let make = || Arc::new(Node2Vec::new(csr.num_vertices(), 2, 8, 2.0, 0.5));

    let nw_app = make();
    let nw = NosWalkerEngine::new(
        Arc::clone(&nw_app),
        on_device(&csr),
        EngineOptions::default(),
        budget(),
    )
    .run_second_order(5)
    .unwrap();
    let gs_app = make();
    let gs = GraSorw::new(
        Arc::clone(&gs_app),
        on_device(&csr),
        EngineOptions::default(),
        budget(),
    )
    .run(5)
    .unwrap();

    assert_eq!(nw.walkers_finished, gs.walkers_finished);
    // Both implement the same rejection sampling: the acceptance *rate*
    // is a property of (graph, p, q), not of the engine.
    let rate = |a: &Node2Vec| a.accepts() as f64 / (a.accepts() + a.rejects()).max(1) as f64;
    let (rn, rg) = (rate(&nw_app), rate(&gs_app));
    assert!(
        (rn - rg).abs() < 0.03,
        "acceptance rates differ: {rn} vs {rg}"
    );
}

#[test]
fn engines_report_distinct_io_economics() {
    // The whole point of the paper: on an out-of-core power-law workload
    // NosWalker moves fewer bytes per step than the block-centric systems.
    let csr = generators::rmat(13, 16, RmatParams::default(), 31);
    // The paper's regime: memory holds ~12 % of the graph. DrunkardMob is
    // granted twice that (it must pin all walker states in memory; extra
    // memory only helps it, so beating it is still conclusive).
    let budget_bytes = csr.edge_region_bytes() / 8;
    let mut eps = std::collections::HashMap::new();
    for name in ["noswalker", "graphwalker", "drunkardmob"] {
        let app = Arc::new(BasicRw::new(10_000, 10, csr.num_vertices()));
        let opts = EngineOptions::default();
        let m = match name {
            "noswalker" => {
                NosWalkerEngine::new(app, on_device(&csr), opts, MemoryBudget::new(budget_bytes))
                    .run(5)
                    .unwrap()
            }
            "graphwalker" => {
                GraphWalker::new(app, on_device(&csr), opts, MemoryBudget::new(budget_bytes))
                    .run(5)
                    .unwrap()
            }
            _ => DrunkardMob::new(
                app,
                on_device(&csr),
                opts,
                MemoryBudget::new(budget_bytes * 2),
            )
            .run(5)
            .unwrap(),
        };
        eps.insert(name, (m.edges_per_step(), m.sim_secs()));
    }
    // The paper's ordering on out-of-core workloads: NosWalker finishes
    // fastest, GraphWalker next, DrunkardMob last (Figs. 2, 9–11).
    assert!(
        eps["noswalker"].1 < eps["graphwalker"].1,
        "NW {:?} vs GW {:?}",
        eps["noswalker"],
        eps["graphwalker"]
    );
    assert!(
        eps["graphwalker"].1 < eps["drunkardmob"].1,
        "GW {:?} vs DM {:?}",
        eps["graphwalker"],
        eps["drunkardmob"]
    );
    // (Per-byte metrics are not asserted here: at integration-test scale
    // the page-cache stand-in serves most re-reads for the block-centric
    // systems for free, which skews edges-per-step; the bench harness
    // measures that metric at the paper's out-of-core scale instead.)
}
