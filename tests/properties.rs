//! Property-based tests over the core data structures and invariants.

use noswalker::apps::BasicRw;
use noswalker::core::presample::plan_quotas;
use noswalker::core::{EngineOptions, NosWalkerEngine, OnDiskGraph, PipelineClock};
use noswalker::graph::layout::{encode_edge_region, EdgeFormat, VertexEdges};
use noswalker::graph::partition::Partition;
use noswalker::graph::{AliasTable, CsrBuilder};
use noswalker::storage::{MemDevice, MemoryBudget, SimSsd, SsdProfile};
use proptest::prelude::*;
use std::sync::Arc;

/// An arbitrary small graph as an edge list over `n` vertices.
fn arb_graph(max_v: usize) -> impl Strategy<Value = (usize, Vec<(u32, u32)>)> {
    (2..max_v).prop_flat_map(|n| {
        let edges = prop::collection::vec((0..n as u32, 0..n as u32), 0..(n * 4));
        (Just(n), edges)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn csr_roundtrips_through_raw_encoding((n, edges) in arb_graph(64)) {
        let mut b = CsrBuilder::new(n);
        for &(s, d) in &edges {
            b.push_edge(s, d);
        }
        let csr = b.build();
        let bytes = encode_edge_region(&csr, EdgeFormat::Unweighted).unwrap();
        prop_assert_eq!(bytes.len() as u64, csr.num_edges() * 4);
        for v in 0..n as u32 {
            let s = csr.edge_start(v) as usize * 4;
            let e = csr.edge_start(v + 1) as usize * 4;
            let view = VertexEdges::from_raw(&bytes[s..e], EdgeFormat::Unweighted);
            prop_assert_eq!(view.degree() as u64, csr.degree(v));
            for i in 0..view.degree() {
                prop_assert_eq!(view.target(i), csr.neighbors(v)[i]);
            }
        }
    }

    #[test]
    fn partition_covers_graph_exactly((n, edges) in arb_graph(64), block_bytes in 1u64..512) {
        let mut b = CsrBuilder::new(n);
        for &(s, d) in &edges {
            b.push_edge(s, d);
        }
        let csr = b.build();
        let p = Partition::by_block_bytes(&csr, EdgeFormat::Unweighted, block_bytes);
        // Vertex coverage: contiguous, complete.
        let mut v = 0;
        let mut byte = 0;
        for blk in p.blocks() {
            prop_assert_eq!(blk.vertex_start, v);
            prop_assert_eq!(blk.byte_start, byte);
            v = blk.vertex_end;
            byte = blk.byte_end;
        }
        prop_assert_eq!(v as usize, n);
        prop_assert_eq!(byte, csr.num_edges() * 4);
        for u in 0..n as u32 {
            prop_assert!(p.block(p.block_of_vertex(u)).contains_vertex(u));
        }
    }

    #[test]
    fn alias_table_picks_valid_nonzero_slots(weights in prop::collection::vec(0.0f32..10.0, 1..40)) {
        prop_assume!(weights.iter().any(|&w| w > 0.0));
        let t = AliasTable::new(&weights);
        for slot in 0..weights.len() {
            for u in [0.0f32, 0.25, 0.5, 0.75, 0.999] {
                let picked = t.pick(slot, u) as usize;
                prop_assert!(picked < weights.len());
                // A picked slot is only ever one with positive weight,
                // unless the uniform slot itself had weight 0 and u >= prob
                // (prob of a zero-weight slot is 0, so it always redirects).
                if weights[slot] == 0.0 {
                    prop_assert!(u >= t.prob(slot) || t.prob(slot) == 0.0);
                }
            }
        }
    }

    #[test]
    fn quota_plans_respect_classes(
        degrees in prop::collection::vec(0u64..200, 1..50),
        capacity in 0u64..2000,
        low in 0u32..6,
        alias in 8u32..200,
        cap in 1u32..64,
    ) {
        let weights = vec![0u32; degrees.len()];
        let plan = plan_quotas(&degrees, &weights, capacity, low, alias, cap);
        for (i, &deg) in degrees.iter().enumerate() {
            if deg == 0 {
                prop_assert_eq!(plan.quotas[i], 0);
            } else if deg <= low as u64 {
                prop_assert!(plan.raw[i]);
                prop_assert!(!plan.alias[i]);
                prop_assert_eq!(plan.quotas[i] as u64, deg);
            } else if plan.alias[i] {
                // Hub retention: raw, whole edge list, only over the
                // alias threshold.
                prop_assert!(plan.raw[i]);
                prop_assert!(deg >= alias as u64);
                prop_assert_eq!(plan.quotas[i] as u64, deg);
            } else {
                prop_assert!(!plan.raw[i]);
                prop_assert!(plan.quotas[i] <= cap);
            }
        }
        let total: u64 = plan.quotas.iter().map(|&q| q as u64).sum();
        prop_assert_eq!(total, plan.total_slots);
    }

    #[test]
    fn budget_never_exceeds_limit(ops in prop::collection::vec((0u64..2000, prop::bool::ANY), 1..60)) {
        let budget = MemoryBudget::new(4096);
        let mut held = Vec::new();
        for (bytes, release_one) in ops {
            if release_one && !held.is_empty() {
                held.pop();
            }
            if let Ok(r) = budget.try_reserve(bytes) {
                held.push(r);
            }
            prop_assert!(budget.in_use() <= 4096);
            prop_assert!(budget.peak() <= 4096);
        }
        drop(held);
        prop_assert_eq!(budget.in_use(), 0);
    }

    #[test]
    fn pipeline_clock_is_monotone(ops in prop::collection::vec((0u8..3, 0u64..10_000), 1..80)) {
        let mut clock = PipelineClock::new();
        let mut last = 0;
        for (kind, x) in ops {
            match kind {
                0 => clock.advance_compute(x),
                1 => {
                    let done = clock.issue_io(x);
                    prop_assert!(done >= clock.now());
                }
                _ => clock.stall_until(x),
            }
            prop_assert!(clock.now() >= last);
            last = clock.now();
        }
        prop_assert!(clock.compute_ns() + clock.stall_ns() <= clock.now() + 1);
    }

    #[test]
    fn engine_terminates_and_conserves_walkers(
        (n, edges) in arb_graph(48),
        walkers in 1u64..200,
        length in 1u32..12,
        block_bytes in 8u64..256,
        pool in 1usize..64,
        knobs in 0u8..8,
    ) {
        let mut b = CsrBuilder::new(n);
        for &(s, d) in &edges {
            b.push_edge(s, d);
        }
        let csr = b.build();
        let device = Arc::new(MemDevice::new());
        let graph = Arc::new(OnDiskGraph::store(&csr, device, block_bytes).unwrap());
        let app = Arc::new(BasicRw::new(walkers, length, n));
        let opts = EngineOptions {
            walker_pool_size: pool,
            enable_walker_management: knobs & 1 != 0,
            enable_shrink_block: knobs & 2 != 0,
            enable_presample: knobs & 4 != 0,
            ..EngineOptions::default()
        };
        let engine = NosWalkerEngine::new(
            Arc::clone(&app),
            graph,
            opts,
            MemoryBudget::new(1 << 20),
        );
        let m = engine.run(9).unwrap();
        prop_assert_eq!(m.walkers_finished, walkers);
        prop_assert!(m.steps <= walkers * length as u64);
        prop_assert_eq!(m.steps, app.steps_taken());
    }

    #[test]
    fn sim_ssd_service_times_scale(len_a in 1u64..(1<<22), len_b in 1u64..(1<<22)) {
        let p = SsdProfile::nvme_p4618();
        let (small, large) = if len_a < len_b { (len_a, len_b) } else { (len_b, len_a) };
        prop_assert!(p.service_ns(small) <= p.service_ns(large));
        prop_assert!(p.service_ns(small) >= 1_000_000_000 / p.iops);
    }

    #[test]
    fn noswalker_is_deterministic_under_arbitrary_configs(
        seed in 0u64..1000,
        walkers in 1u64..100,
        length in 1u32..8,
    ) {
        let csr = noswalker::graph::generators::uniform_degree(64, 4, 5);
        let run = || {
            let device = Arc::new(SimSsd::new(SsdProfile::nvme_p4618()));
            let graph = Arc::new(OnDiskGraph::store(&csr, device, 128).unwrap());
            let app = Arc::new(BasicRw::new(walkers, length, 64));
            NosWalkerEngine::new(app, graph, EngineOptions::default(), MemoryBudget::new(1 << 20))
                .run(seed)
                .unwrap()
        };
        let (mut a, mut b) = (run(), run());
        a.wall_ns = 0;
        b.wall_ns = 0;
        prop_assert_eq!(a, b);
    }
}
