//! Validates the Random-Walk-with-Restart application against the exact
//! stationary solution computed by power iteration: the Monte-Carlo
//! estimate produced through the full out-of-core engine must converge to
//! the analytic personalized PageRank vector.

use noswalker::apps::RandomWalkWithRestart;
use noswalker::core::{EngineOptions, NosWalkerEngine, OnDiskGraph};
use noswalker::graph::{generators, Csr};
use noswalker::storage::{MemoryBudget, SimSsd, SsdProfile};
use std::sync::Arc;

/// Exact RWR/PPR vector by power iteration on the uniform random walk
/// with restart probability `c` to `source`.
fn exact_rwr(g: &Csr, source: u32, c: f64, iters: usize) -> Vec<f64> {
    let n = g.num_vertices();
    let mut p = vec![0.0; n];
    p[source as usize] = 1.0;
    for _ in 0..iters {
        let mut next = vec![0.0; n];
        // Teleport mass (restart) goes back to the source.
        let mut teleport = 0.0;
        for v in 0..n {
            if p[v] == 0.0 {
                continue;
            }
            teleport += c * p[v];
            let deg = g.degree(v as u32) as f64;
            if deg == 0.0 {
                // Dead ends hold their (non-teleport) mass; the engines
                // terminate such walkers, so exclude them by construction:
                // the test graph has no dead ends.
                next[v] += (1.0 - c) * p[v];
                continue;
            }
            let share = (1.0 - c) * p[v] / deg;
            for &u in g.neighbors(v as u32) {
                next[u as usize] += share;
            }
        }
        next[source as usize] += teleport;
        p = next;
    }
    p
}

#[test]
fn rwr_estimate_converges_to_power_iteration() {
    // A dead-end-free graph so the analytic chain matches the walk.
    let g = generators::uniform_degree(256, 6, 17);
    let source = 13u32;
    let c = 0.2f32;

    let device = Arc::new(SimSsd::new(SsdProfile::nvme_p4618()));
    let graph = Arc::new(OnDiskGraph::store(&g, device, 1024).unwrap());
    // Long walks approximate the stationary distribution; 40k walks × 30
    // hops = 1.2M samples.
    let app = Arc::new(RandomWalkWithRestart::new(
        vec![source],
        40_000,
        c,
        30,
        g.num_vertices(),
    ));
    let engine = NosWalkerEngine::new(
        Arc::clone(&app),
        graph,
        EngineOptions::default(),
        MemoryBudget::new(1 << 20),
    );
    let m = engine.run(2024).unwrap();
    assert_eq!(m.walkers_finished, 40_000);

    let exact = exact_rwr(&g, source, c as f64, 200);
    let est = app.estimate();
    // The MC estimate averages over the walk *trajectory* rather than the
    // stationary tail, so early-step transients bias it slightly; an L1
    // bound plus agreement on the heavy entries is the right check.
    let l1: f64 = est.iter().zip(&exact).map(|(a, b)| (a - b).abs()).sum();
    assert!(l1 < 0.15, "L1 distance to exact RWR vector: {l1}");

    // The source must be the heaviest vertex in both.
    let argmax = |v: &[f64]| {
        v.iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite"))
            .map(|(i, _)| i)
            .expect("non-empty")
    };
    assert_eq!(argmax(&est), source as usize);
    assert_eq!(argmax(&exact), source as usize);
    // And the source mass itself must agree closely.
    let (es, xs) = (est[source as usize], exact[source as usize]);
    assert!((es - xs).abs() < 0.03, "source mass {es} vs exact {xs}");
}
