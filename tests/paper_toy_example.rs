//! The paper's running example (Figs. 3 and 5): a small two-block graph
//! with four walkers of length five. The exact edge counts there (91 for
//! DrunkardMob, 65 for GraphWalker, 32 for NosWalker) depend on the
//! figure's specific random choices; what must reproduce is the *ordering*
//! and the mechanism behind it — DrunkardMob pays one block load per step
//! wave, GraphWalker collapses in-block chains, NosWalker additionally
//! banks pre-sampled destinations for reuse after eviction.

use noswalker::apps::BasicRw;
use noswalker::baselines::{DrunkardMob, GraphWalker};
use noswalker::core::{EngineOptions, NosWalkerEngine, OnDiskGraph, RunMetrics};
use noswalker::graph::{Csr, CsrBuilder};
use noswalker::storage::{MemoryBudget, SimSsd, SsdProfile};
use std::sync::Arc;

/// The Fig. 3(a) 9-vertex motif — a hub block (v0 with a self-loop, v1,
/// v2) plus a second block (v3..v8) with cross-traffic — replicated 12
/// times with one cross-motif edge each, so the workload is big enough
/// that the memory budget cannot simply cache everything (as it cannot in
/// the paper's walkthrough).
const MOTIFS: u32 = 12;

fn toy_graph() -> Csr {
    let motif = [
        // Block A of the motif: hub v0 (degree 7, incl. self-loop), v1, v2.
        (0u32, 0u32),
        (0, 1),
        (0, 2),
        (0, 3),
        (0, 4),
        (0, 5),
        (0, 6),
        (1, 6),
        (1, 3),
        (2, 0),
        (2, 7),
        // Block B of the motif: v3..v8.
        (3, 0),
        (3, 4),
        (4, 2),
        (4, 5),
        (5, 8),
        (5, 0),
        (6, 0),
        (6, 2),
        (7, 3),
        (7, 8),
        (8, 1),
        (8, 0),
    ];
    let n = 9 * MOTIFS;
    let mut b = CsrBuilder::new(n as usize);
    for m in 0..MOTIFS {
        for &(u, v) in &motif {
            b.push_edge(m * 9 + u, m * 9 + v);
        }
        // One cross-motif edge keeps walkers migrating between motifs.
        b.push_edge(m * 9 + 5, ((m + 1) % MOTIFS) * 9);
    }
    b.build()
}

/// Many repetitions of the 4-walker length-5 task, summed, to smooth the
/// randomness of individual runs.
fn run_many(engine: &str) -> RunMetrics {
    let csr = toy_graph();
    let mut total = RunMetrics::default();
    for seed in 0..40u64 {
        let device = Arc::new(SimSsd::new(SsdProfile::nvme_p4618()));
        // One block per motif half, like the paper's A/B split.
        let graph = Arc::new(OnDiskGraph::store(&csr, device, 12 * 4).unwrap());
        assert!(graph.num_blocks() >= 2 * MOTIFS as usize - 2);
        // The paper's 4 walkers of length 5, one set per motif.
        let app = Arc::new(BasicRw::new(4 * MOTIFS as u64, 5, csr.num_vertices()));
        // A budget holding only a few of the blocks at a time: eviction is
        // forced, as in the paper's walkthrough.
        let budget = MemoryBudget::new(500);
        let m = match engine {
            "dm" => DrunkardMob::new(app, graph, EngineOptions::default(), budget)
                .run(seed)
                .unwrap(),
            "gw" => GraphWalker::new(app, graph, EngineOptions::default(), budget)
                .run(seed)
                .unwrap(),
            _ => NosWalkerEngine::new(app, graph, EngineOptions::default(), budget)
                .run(seed)
                .unwrap(),
        };
        assert_eq!(m.walkers_finished, 4 * MOTIFS as u64);
        total.steps += m.steps;
        total.edges_loaded += m.edges_loaded;
        total.sim_ns += m.sim_ns;
    }
    total
}

#[test]
fn toy_example_orders_systems_like_figure_3() {
    let dm = run_many("dm");
    let gw = run_many("gw");
    let nw = run_many("nw");
    // All systems walk the same total work (no dead ends in the motif).
    assert_eq!(dm.steps, 40 * 4 * MOTIFS as u64 * 5);
    assert_eq!(gw.steps, dm.steps);
    assert_eq!(nw.steps, dm.steps);
    // Edges loaded: DrunkardMob ≥ GraphWalker ≥ NosWalker, strictly at the
    // ends (paper: 91 vs 65 vs 32 on its instance of the toy).
    assert!(
        dm.edges_loaded > gw.edges_loaded,
        "DM {} vs GW {}",
        dm.edges_loaded,
        gw.edges_loaded
    );
    assert!(
        gw.edges_loaded > nw.edges_loaded,
        "GW {} vs NW {}",
        gw.edges_loaded,
        nw.edges_loaded
    );
    // And time follows the same ordering.
    assert!(dm.sim_ns > gw.sim_ns);
    assert!(gw.sim_ns > nw.sim_ns);
}
