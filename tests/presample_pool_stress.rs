//! Multi-thread stress over the lock-free published pre-sample buffer:
//! every sampled slot must be claimed *at most once* across all threads,
//! and the claim cursors must account for every attempt (successes plus
//! stalls), because the refill planner reads them back as demand weights.

use noswalker::core::presample::{plan_quotas, BatchClaim, Claim, PreSampleBuffer};
use std::collections::HashSet;
use std::sync::Arc;

const NV: usize = 8;
const THREADS: usize = 8;
/// Claim attempts per thread per vertex — more than any per-vertex quota,
/// so every vertex is driven past depletion on purpose.
const ATTEMPTS: usize = 40;

/// Scale override for expensive interpreters (the nightly Miri job runs
/// this test at reduced scale). The product `threads * attempts` must stay
/// at or above the largest per-vertex quota (~25 under the plan below) or
/// the depletion assertions stop holding.
fn env_scale(var: &str, default: usize) -> usize {
    std::env::var(var)
        .ok()
        .and_then(|s| s.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(default)
}

/// Builds a published buffer whose sampled slots hold globally unique
/// destination values, so cross-thread double-claims are detectable.
fn build_published() -> (Arc<noswalker::core::presample::PublishedBuffer>, Vec<u32>) {
    let degrees = vec![100u64; NV];
    let weights = vec![1u32; NV];
    // Threshold 0 (and alias retention disabled): no raw retention, every
    // vertex gets sampled slots.
    let plan = plan_quotas(&degrees, &weights, 200, 0, u32::MAX, 64);
    assert!(plan.total_slots > 0);
    assert!(plan.quotas.iter().all(|&q| q > 0));
    let mut next = 10_000u32;
    let (buf, draws) = PreSampleBuffer::build(
        0,
        &plan,
        false,
        |_v| {
            next += 1;
            next
        },
        |_v, _edges, _w| unreachable!("no raw vertices planned"),
    );
    assert_eq!(draws, plan.total_slots);
    (Arc::new(buf.into_published()), plan.quotas)
}

#[test]
fn concurrent_claims_hand_out_each_slot_at_most_once() {
    let (buf, quotas) = build_published();
    let threads = env_scale("NOSW_STRESS_THREADS", THREADS);
    let attempts_per_thread = env_scale("NOSW_STRESS_ATTEMPTS", ATTEMPTS);
    let handles: Vec<_> = (0..threads)
        .map(|_| {
            let buf = Arc::clone(&buf);
            std::thread::spawn(move || {
                let mut got: Vec<Vec<u32>> = vec![Vec::new(); NV];
                let mut stalls = vec![0u64; NV];
                for round in 0..attempts_per_thread {
                    for v in 0..NV {
                        // Interleave vertices round-robin to maximise
                        // cross-thread contention on each cursor.
                        let _ = round;
                        match buf.claim(v as u32) {
                            Claim::Sampled(dst) => got[v].push(dst),
                            Claim::Stalled => stalls[v] += 1,
                            Claim::Raw(_) => panic!("no raw vertices planned"),
                        }
                    }
                }
                (got, stalls)
            })
        })
        .collect();

    let mut per_vertex_success = [0u64; NV];
    let mut per_vertex_stalls = [0u64; NV];
    let mut seen = HashSet::new();
    for h in handles {
        let (got, stalls) = h.join().unwrap();
        for (v, claimed) in got.into_iter().enumerate() {
            per_vertex_success[v] += claimed.len() as u64;
            per_vertex_stalls[v] += stalls[v];
            for dst in claimed {
                assert!(seen.insert(dst), "slot value {dst} claimed twice");
            }
        }
    }

    let attempts = (threads * attempts_per_thread) as u64;
    let snapshot = buf.visit_weights_snapshot();
    for v in 0..NV {
        // Exactly the quota was served — no slot lost, none duplicated.
        assert_eq!(
            per_vertex_success[v],
            u64::from(quotas[v]).min(attempts),
            "vertex {v} served a wrong number of slots"
        );
        // Every attempt either succeeded or stalled…
        assert_eq!(
            per_vertex_success[v] + per_vertex_stalls[v],
            attempts,
            "vertex {v} lost attempts"
        );
        // …and the cursor recorded all of them as demand weight.
        assert_eq!(
            u64::from(snapshot[v]),
            attempts,
            "vertex {v} cursor does not match the attempt count"
        );
    }
    assert_eq!(
        seen.len() as u64,
        buf.sampled_capacity(),
        "not every sampled slot was handed out"
    );
    assert_eq!(buf.remaining_sampled(), 0);
}

#[test]
fn concurrent_batch_claims_hand_out_each_slot_at_most_once() {
    let (buf, _quotas) = build_published();
    let threads = env_scale("NOSW_STRESS_THREADS", THREADS);
    let attempts_per_thread = env_scale("NOSW_STRESS_ATTEMPTS", ATTEMPTS);
    let handles: Vec<_> = (0..threads)
        .map(|ti| {
            let buf = Arc::clone(&buf);
            std::thread::spawn(move || {
                let mut got: Vec<u32> = Vec::new();
                let mut served = vec![0u64; NV];
                let mut stalls = vec![0u64; NV];
                for round in 0..attempts_per_thread {
                    for v in 0..NV {
                        // Vary the batch size per caller so truncated and
                        // over-claimed batches both happen under contention.
                        let n = 1 + ((ti + round + v) % 5) as u32;
                        match buf.claim_batch(v as u32, n) {
                            BatchClaim::Sampled(dsts) => {
                                served[v] += dsts.len() as u64;
                                got.extend_from_slice(dsts);
                            }
                            BatchClaim::Stalled => stalls[v] += 1,
                            BatchClaim::Raw(_) => panic!("no raw vertices planned"),
                        }
                    }
                }
                (got, served, stalls)
            })
        })
        .collect();

    let mut seen = HashSet::new();
    let mut total_served = [0u64; NV];
    for h in handles {
        let (got, served, _stalls) = h.join().unwrap();
        for (v, &s) in served.iter().enumerate() {
            total_served[v] += s;
        }
        for dst in got {
            assert!(seen.insert(dst), "slot value {dst} claimed twice");
        }
    }
    // Batches drove every vertex past depletion, so every sampled slot was
    // handed out exactly once across all threads.
    assert_eq!(seen.len() as u64, buf.sampled_capacity());
    assert_eq!(buf.remaining_sampled(), 0);
    let snapshot = buf.visit_weights_snapshot();
    for v in 0..NV {
        // The cursor still means "visits": at least one tick per serving
        // batch or stall, and never below the served-slot count.
        assert!(u64::from(snapshot[v]) >= total_served[v]);
    }
}
