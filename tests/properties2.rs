//! Second wave of property tests: storage composition, graph I/O, the
//! second-order engine, and restart semantics.

use noswalker::apps::{Node2Vec, RandomWalkWithRestart};
use noswalker::core::{EngineOptions, NosWalkerEngine, OnDiskGraph};
use noswalker::graph::io::{load_csr, read_edge_list, save_csr, write_edge_list};
use noswalker::graph::{generators, CsrBuilder};
use noswalker::storage::{Device, MemoryBudget, Raid0, SimSsd, SsdProfile};
use proptest::prelude::*;
use std::sync::Arc;

fn arb_graph(max_v: usize) -> impl Strategy<Value = (usize, Vec<(u32, u32)>)> {
    (2..max_v).prop_flat_map(|n| {
        let edges = prop::collection::vec((0..n as u32, 0..n as u32), 1..(n * 4));
        (Just(n), edges)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn raid0_reads_match_writes(
        members in 1usize..6,
        stripe in 1u64..200,
        writes in prop::collection::vec((0u64..2000, prop::collection::vec(any::<u8>(), 1..300)), 1..12),
    ) {
        let raid = Raid0::new(members, SsdProfile::nvme_p4618(), stripe);
        // A shadow flat buffer is the reference model.
        let mut shadow = vec![0u8; 4096];
        for (off, data) in &writes {
            let end = *off as usize + data.len();
            if shadow.len() < end {
                shadow.resize(end, 0);
            }
            shadow[*off as usize..end].copy_from_slice(data);
            raid.write(*off, data).unwrap();
        }
        for (off, data) in &writes {
            let mut buf = vec![0u8; data.len()];
            raid.read(*off, &mut buf).unwrap();
            prop_assert_eq!(&buf, &shadow[*off as usize..*off as usize + data.len()]);
        }
    }

    #[test]
    fn binary_csr_roundtrips_arbitrary_graphs((n, edges) in arb_graph(64)) {
        let mut b = CsrBuilder::new(n);
        for &(s, d) in &edges {
            b.push_edge(s, d);
        }
        let g = b.build();
        let mut bytes = Vec::new();
        save_csr(&g, &mut bytes).unwrap();
        let g2 = load_csr(bytes.as_slice()).unwrap();
        prop_assert_eq!(g, g2);
    }

    #[test]
    fn edge_list_roundtrips_arbitrary_graphs((n, edges) in arb_graph(48)) {
        let mut b = CsrBuilder::new(n);
        for &(s, d) in &edges {
            b.push_edge(s, d);
        }
        let g = b.build();
        let mut text = Vec::new();
        write_edge_list(&g, &mut text).unwrap();
        let g2 = read_edge_list(text.as_slice()).unwrap();
        prop_assert_eq!(g.num_edges(), g2.num_edges());
        for v in 0..g2.num_vertices() as u32 {
            prop_assert_eq!(g.neighbors(v), g2.neighbors(v));
        }
    }

    #[test]
    fn second_order_engine_terminates_and_is_deterministic(
        scale in 5u32..8,
        walks_per_vertex in 1u32..3,
        length in 1u32..6,
        seed in 0u64..500,
    ) {
        let csr = generators::rmat(scale, 4, generators::RmatParams::default(), 13).to_undirected();
        let n = csr.num_vertices();
        let run = || {
            let device = Arc::new(SimSsd::new(SsdProfile::nvme_p4618()));
            let graph = Arc::new(OnDiskGraph::store(&csr, device, 256).unwrap());
            let app = Arc::new(Node2Vec::new(n, walks_per_vertex, length, 2.0, 0.5));
            NosWalkerEngine::new(app, graph, EngineOptions::default(), MemoryBudget::new(1 << 20))
                .run_second_order(seed)
                .unwrap()
        };
        let (mut a, mut b) = (run(), run());
        prop_assert_eq!(a.walkers_finished, (n as u64) * walks_per_vertex as u64);
        prop_assert!(a.steps <= a.walkers_finished * length as u64);
        prop_assert_eq!(a.steps, a.accepts);
        a.wall_ns = 0;
        b.wall_ns = 0;
        prop_assert_eq!(a, b);
    }

    #[test]
    fn restart_walks_complete_under_any_restart_probability(
        c in 0.0f32..0.95,
        walkers in 1u64..80,
        seed in 0u64..200,
    ) {
        let csr = generators::uniform_degree(128, 4, 3);
        let device = Arc::new(SimSsd::new(SsdProfile::nvme_p4618()));
        let graph = Arc::new(OnDiskGraph::store(&csr, device, 512).unwrap());
        let sources = vec![0u32, 7, 99];
        let app = Arc::new(RandomWalkWithRestart::new(sources, walkers, c, 12, 128));
        let engine = NosWalkerEngine::new(
            Arc::clone(&app),
            graph,
            EngineOptions::default(),
            MemoryBudget::new(1 << 20),
        );
        let m = engine.run(seed).unwrap();
        prop_assert_eq!(m.walkers_finished, 3 * walkers);
        // Uniform graph, no dead ends: every hop (restart or move) counts.
        prop_assert_eq!(m.steps, 3 * walkers * 12);
        prop_assert!(app.restarts() <= m.steps);
        if c == 0.0 {
            prop_assert_eq!(app.restarts(), 0);
        }
    }
}
