//! Root-level pins for the sharded serve plane, through the facade crate:
//!
//! * **N=1 parity** — a one-shard [`ShardPlane`] is not "close to" the
//!   unsharded [`ServeEngine`], it *is* it: outcomes, end time, round
//!   count, histograms and step counts replay bit-identically on a
//!   workload the in-crate smoke tests do not cover (RMAT skew plus
//!   deadline-constrained classes).
//! * **Conservation under randomized sharding** — for arbitrary shard
//!   counts, query mixes and admission bounds, every walker that crosses
//!   a partition boundary is re-admitted (`emigrated == immigrated`),
//!   every offered query gets exactly one outcome, and nothing is shed
//!   silently: each shed outcome has a matching `QueryShed` trace event.
//!
//! These run in release builds too.

use noswalker::core::audit::TraceEvent;
use noswalker::core::{audit_handoffs, MemorySink, OnDiskGraph, QuerySpec, StaticQuerySource};
use noswalker::graph::generators::{self, RmatParams};
use noswalker::graph::Csr;
use noswalker::serve::{ServeEngine, ServeOptions};
use noswalker::shard::ShardPlane;
use noswalker::storage::{per_shard_devices, MemoryBudget, SimSsd, SsdProfile};
use proptest::prelude::*;
use std::collections::BTreeSet;
use std::sync::Arc;

fn spec(id: u64, class: &str, walkers: u64, arrival_ns: u64) -> QuerySpec {
    QuerySpec {
        id,
        class: class.to_string(),
        walkers,
        walk_length: 6,
        deadline_ns: None,
        arrival_ns,
    }
}

#[test]
fn one_shard_plane_is_bit_identical_to_the_serve_engine() {
    let csr: Csr = generators::rmat(10, 10, RmatParams::default(), 41);
    let block = csr.edge_region_bytes() / 16;
    let budget = (csr.edge_region_bytes() / 4).max(64 << 10);
    let mut mix = vec![
        spec(1, "ppr:7", 120, 0),
        spec(2, "basic", 90, 50),
        spec(3, "deepwalk:0", 80, 100),
        spec(4, "rwr:7:0.2", 70, 150),
        spec(5, "ppr:900", 60, 200),
    ];
    // A generous deadline exercises the deadline bookkeeping without
    // cancelling anything — the two paths must agree on it exactly.
    mix[3].deadline_ns = Some(u64::MAX / 2);

    let device = Arc::new(SimSsd::new(SsdProfile::nvme_p4618()));
    let g = Arc::new(OnDiskGraph::store(&csr, device, block).expect("store"));
    let engine = ServeEngine::new(g, MemoryBudget::new(budget), ServeOptions::default());
    let mut src = StaticQuerySource::new(mix.clone());
    let reference = engine.run(&mut src, None).expect("serve");

    let devices = per_shard_devices(1, 1, SsdProfile::nvme_p4618(), 64 << 10);
    let plane =
        ShardPlane::build(&csr, devices, budget, block, ServeOptions::default()).expect("build");
    let mut src = StaticQuerySource::new(mix);
    let sharded = plane.run(&mut src, None).expect("serve");

    assert_eq!(sharded.report.outcomes, reference.outcomes);
    assert_eq!(sharded.report.end_ns, reference.end_ns);
    assert_eq!(sharded.report.rounds, reference.rounds);
    assert_eq!(sharded.report.histograms, reference.histograms);
    assert_eq!(sharded.report.metrics.steps, reference.metrics.steps);
    assert_eq!(sharded.walkers_emigrated, 0, "one shard cannot hand off");
    assert_eq!(sharded.walkers_immigrated, 0);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Handoff conservation and no-silent-shed, for any shard count,
    /// query mix and (possibly tiny) admission bound.
    #[test]
    fn sharded_serving_conserves_walkers_and_never_sheds_silently(
        shards in 1usize..=5,
        queries in prop::collection::vec((0u32..128, 1u64..60, 0u64..3_000), 1..8),
        max_pending in 1usize..=4,
        seed in 0u64..50,
    ) {
        let csr = generators::uniform_degree(128, 4, 7);
        let mut specs = Vec::new();
        for (i, &(v, walkers, gap)) in queries.iter().enumerate() {
            let class = match i % 3 {
                0 => format!("ppr:{v}"),
                1 => format!("deepwalk:{v}"),
                _ => format!("rwr:{v}:0.2"),
            };
            let arrival = i as u64 * gap;
            specs.push(spec(i as u64 + 1, &class, walkers, arrival));
        }
        let offered: BTreeSet<u64> = specs.iter().map(|q| q.id).collect();

        let mut opts = ServeOptions { seed, ..ServeOptions::default() };
        opts.admission.max_pending = max_pending;
        let devices = per_shard_devices(shards, 1, SsdProfile::nvme_p4618(), 64 << 10);
        let plane = ShardPlane::build(&csr, devices, 64 << 10, 2048, opts).expect("build");
        let mut src = StaticQuerySource::new(specs);
        let mut sink = MemorySink::default();
        let r = plane.run(&mut src, Some(&mut sink)).expect("serve");

        // Handoff conservation: the run drains every boundary crossing.
        prop_assert_eq!(r.walkers_emigrated, r.walkers_immigrated);
        audit_handoffs(r.walkers_emigrated, r.walkers_immigrated, 0).assert_clean();
        let handoff_sum: u64 = sink.events.iter().map(|e| match e {
            TraceEvent::ShardHandoff { walkers, .. } => *walkers,
            _ => 0,
        }).sum();
        prop_assert_eq!(handoff_sum, r.walkers_emigrated);

        // Every offered query gets exactly one outcome, served or shed.
        let got: BTreeSet<u64> = r.report.outcomes.iter().map(|o| o.id).collect();
        prop_assert_eq!(r.report.outcomes.len(), got.len(), "duplicate outcomes");
        prop_assert_eq!(&got, &offered);

        // No silent sheds: a shed outcome needs a QueryShed trace event,
        // and vice versa; a served query's walkers are fully accounted.
        let shed_events: BTreeSet<u64> = sink.events.iter().filter_map(|e| match e {
            TraceEvent::QueryShed { query, .. } => Some(*query),
            _ => None,
        }).collect();
        for o in &r.report.outcomes {
            if o.shed {
                prop_assert!(shed_events.contains(&o.id), "silent shed of {}", o.id);
                prop_assert_eq!(o.stats.issued, 0);
            } else {
                prop_assert_eq!(o.stats.issued, o.stats.completed + o.stats.cancelled);
            }
        }
        for id in &shed_events {
            let o = r.report.outcomes.iter().find(|o| o.id == *id).expect("outcome");
            prop_assert!(o.shed, "QueryShed event for a served query {id}");
        }
    }
}
