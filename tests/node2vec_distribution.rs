//! Statistical validation of the second-order engine: the empirical
//! Node2Vec transition distribution produced by NosWalker's decoupled
//! candidate/rejection pipeline must match the exact α-weights of the
//! model (paper Eq. 1 / Appendix A) — rejection sampling through
//! pre-sample buffers and deferred block loads must not bias the walk.

use noswalker::apps::Node2Vec;
use noswalker::core::{EngineOptions, NosWalkerEngine, OnDiskGraph};
use noswalker::graph::{Csr, CsrBuilder};
use noswalker::storage::{MemoryBudget, SimSsd, SsdProfile};
use std::collections::HashMap;
use std::sync::Arc;

/// A small undirected graph with triangles, squares and pendants so all
/// three distance classes (d = 0, 1, 2) occur.
fn test_graph() -> Csr {
    let edges = [
        (0u32, 1u32),
        (1, 2),
        (2, 0), // triangle 0-1-2
        (2, 3),
        (3, 4),
        (4, 5),
        (5, 2), // square 2-3-4-5
        (1, 6), // pendant
        (4, 7), // pendant
        (0, 8),
        (8, 9),
        (9, 0), // second triangle 0-8-9
    ];
    let mut b = CsrBuilder::new(10);
    for (u, v) in edges {
        b.push_edge(u, v);
    }
    b.build().to_undirected()
}

/// Exact Node2Vec transition probabilities from `cur`, given `prev`.
fn exact_transition(g: &Csr, prev: u32, cur: u32, p: f64, q: f64) -> HashMap<u32, f64> {
    let mut weights = HashMap::new();
    for &x in g.neighbors(cur) {
        let w = if x == prev {
            1.0 / p
        } else if g.has_edge(x, prev) {
            1.0
        } else {
            1.0 / q
        };
        *weights.entry(x).or_insert(0.0) += w;
    }
    let total: f64 = weights.values().sum();
    weights.into_iter().map(|(k, v)| (k, v / total)).collect()
}

#[test]
fn second_order_transitions_match_exact_node2vec_law() {
    let g = test_graph();
    let (p, q) = (2.0f32, 0.5f32);
    // Many short (length 2) walks from every vertex; collect all paths.
    let walks_per_vertex = 40_000u32;
    let app = Arc::new(
        Node2Vec::new(g.num_vertices(), walks_per_vertex, 2, p, q)
            .collecting((g.num_vertices() as u32 * walks_per_vertex) as usize),
    );
    let device = Arc::new(SimSsd::new(SsdProfile::nvme_p4618()));
    // Small blocks + tight budget force the decoupled machinery (block
    // evictions, pre-sample candidates, deferred rejection) to be used.
    let graph = Arc::new(OnDiskGraph::store(&g, device, 64).unwrap());
    let budget = MemoryBudget::new(8 << 10);
    let engine = NosWalkerEngine::new(Arc::clone(&app), graph, EngineOptions::default(), budget);
    let m = engine.run_second_order(1234).unwrap();
    assert_eq!(
        m.walkers_finished,
        g.num_vertices() as u64 * walks_per_vertex as u64
    );

    // Conditional empirical distribution of the 2nd hop given (v0, v1).
    let mut counts: HashMap<(u32, u32), HashMap<u32, u64>> = HashMap::new();
    for path in app.take_corpus() {
        if path.len() == 3 {
            *counts
                .entry((path[0], path[1]))
                .or_default()
                .entry(path[2])
                .or_insert(0) += 1;
        }
    }
    assert!(!counts.is_empty(), "no completed 2-step walks collected");

    let mut checked = 0;
    for ((v0, v1), dist) in counts {
        let n: u64 = dist.values().sum();
        if n < 3000 {
            continue; // not enough samples for a tight check
        }
        let exact = exact_transition(&g, v0, v1, p as f64, q as f64);
        for (&x, &c) in &dist {
            let emp = c as f64 / n as f64;
            let want = exact.get(&x).copied().unwrap_or(0.0);
            assert!(
                (emp - want).abs() < 0.02,
                "transition ({v0}->{v1}->{x}): empirical {emp:.4} vs exact {want:.4} (n={n})"
            );
            checked += 1;
        }
        // No mass outside the exact support.
        for (&x, &w) in &exact {
            if w > 0.03 {
                assert!(dist.contains_key(&x), "({v0}->{v1}) never reached {x}");
            }
        }
    }
    assert!(checked > 20, "too few transitions checked: {checked}");
}

#[test]
fn first_hop_is_uniform() {
    let g = test_graph();
    let app = Arc::new(Node2Vec::new(g.num_vertices(), 30_000, 1, 2.0, 0.5).collecting(400_000));
    let device = Arc::new(SimSsd::new(SsdProfile::nvme_p4618()));
    let graph = Arc::new(OnDiskGraph::store(&g, device, 64).unwrap());
    let engine = NosWalkerEngine::new(
        Arc::clone(&app),
        graph,
        EngineOptions::default(),
        MemoryBudget::new(8 << 10),
    );
    engine.run_second_order(99).unwrap();
    // Vertex 2 has 4 undirected neighbors (0, 1, 3, 5): each ~25 %.
    let mut counts: HashMap<u32, u64> = HashMap::new();
    let mut total = 0u64;
    for path in app.take_corpus() {
        if path.len() == 2 && path[0] == 2 {
            *counts.entry(path[1]).or_insert(0) += 1;
            total += 1;
        }
    }
    assert!(total > 5000, "not enough first hops from vertex 2: {total}");
    assert_eq!(counts.len(), 4, "first hop support wrong: {counts:?}");
    for (&x, &c) in &counts {
        let f = c as f64 / total as f64;
        assert!((f - 0.25).abs() < 0.02, "hop 2->{x}: {f}");
    }
}
