//! Cross-engine conservation: the `RunAudit` laws must hold for every
//! engine under every option set — in release builds too, not only via
//! the `debug_assertions` hook inside the engines.

use noswalker::apps::{BasicRw, Node2Vec};
use noswalker::baselines::{
    DistributedSim, DrunkardMob, GraSorw, GraphWalker, Graphene, InMemory, NetworkProfile,
};
use noswalker::core::audit::{MemorySink, RunAudit, TraceEvent};
use noswalker::core::parallel::ParallelRunner;
use noswalker::core::{EngineOptions, NosWalkerEngine, OnDiskGraph, RunMetrics};
use noswalker::graph::generators::{self, RmatParams};
use noswalker::graph::Csr;
use noswalker::storage::{MemoryBudget, SimSsd, SsdProfile};
use std::sync::Arc;

const WALKERS: u64 = 150;
const LENGTH: u32 = 6;
const SEED: u64 = 13;

fn graph() -> Csr {
    generators::rmat(10, 10, RmatParams::default(), 41)
}

fn on_device(csr: &Csr) -> Arc<OnDiskGraph> {
    let device = Arc::new(SimSsd::new(SsdProfile::nvme_p4618()));
    Arc::new(OnDiskGraph::store(csr, device, csr.edge_region_bytes() / 16).unwrap())
}

fn option_sets() -> Vec<(&'static str, EngineOptions)> {
    vec![
        ("default", EngineOptions::default()),
        ("base", EngineOptions::base()),
        ("full", EngineOptions::full()),
        ("with_shrink_block", EngineOptions::with_shrink_block()),
    ]
}

/// Checks the trace agrees with the metrics where the engine's clock is
/// deterministic (every engine here is single- or coordinator-threaded).
fn check_trace(label: &str, sink: &MemorySink, m: &RunMetrics) {
    let run_end = sink.events.iter().find_map(|ev| match ev {
        TraceEvent::RunEnd {
            steps,
            walkers_finished,
            ..
        } => Some((*steps, *walkers_finished)),
        _ => None,
    });
    let (steps, finished) = run_end.unwrap_or_else(|| panic!("{label}: no RunEnd event"));
    assert_eq!(steps, m.steps, "{label}: RunEnd steps");
    assert_eq!(finished, m.walkers_finished, "{label}: RunEnd walkers");
    for ev in &sink.events {
        if let TraceEvent::Stall {
            from_ns, until_ns, ..
        } = ev
        {
            assert!(from_ns <= until_ns, "{label}: stall interval inverted");
        }
    }
}

/// One engine run returning its metrics, recorded trace, and budget.
type TracedRun<'a> = Box<dyn Fn() -> (RunMetrics, MemorySink, Arc<MemoryBudget>) + 'a>;

#[test]
fn budgeted_engines_conserve_under_every_option_set() {
    let csr = graph();
    let n = csr.num_vertices();
    for (opt_name, opts) in option_sets() {
        let runs: Vec<(&str, TracedRun<'_>)> = vec![
            (
                "noswalker",
                Box::new(|| {
                    let budget = MemoryBudget::new(1 << 20);
                    let app = Arc::new(BasicRw::new(WALKERS, LENGTH, n));
                    let e = NosWalkerEngine::new(
                        app,
                        on_device(&csr),
                        opts.clone(),
                        Arc::clone(&budget),
                    );
                    let mut sink = MemorySink::new();
                    let m = e.run_with_sink(SEED, Some(&mut sink)).unwrap();
                    (m, sink, budget)
                }),
            ),
            (
                "drunkardmob",
                Box::new(|| {
                    let budget = MemoryBudget::new(1 << 20);
                    let app = Arc::new(BasicRw::new(WALKERS, LENGTH, n));
                    let e =
                        DrunkardMob::new(app, on_device(&csr), opts.clone(), Arc::clone(&budget));
                    let mut sink = MemorySink::new();
                    let m = e.run_with_sink(SEED, Some(&mut sink)).unwrap();
                    (m, sink, budget)
                }),
            ),
            (
                "graphwalker",
                Box::new(|| {
                    let budget = MemoryBudget::new(1 << 20);
                    let app = Arc::new(BasicRw::new(WALKERS, LENGTH, n));
                    let e =
                        GraphWalker::new(app, on_device(&csr), opts.clone(), Arc::clone(&budget));
                    let mut sink = MemorySink::new();
                    let m = e.run_with_sink(SEED, Some(&mut sink)).unwrap();
                    (m, sink, budget)
                }),
            ),
            (
                "graphene",
                Box::new(|| {
                    let budget = MemoryBudget::new(1 << 20);
                    let app = Arc::new(BasicRw::new(WALKERS, LENGTH, n));
                    let e = Graphene::new(app, on_device(&csr), opts.clone(), Arc::clone(&budget));
                    let mut sink = MemorySink::new();
                    let m = e.run_with_sink(SEED, Some(&mut sink)).unwrap();
                    (m, sink, budget)
                }),
            ),
        ];
        for (engine, run) in runs {
            let label = format!("{engine}/{opt_name}");
            let (m, sink, budget) = run();
            let audit = RunAudit::with_floor(WALKERS, 0);
            let report = audit.verify(&m, &budget);
            assert!(report.is_clean(), "{label}: {:?}", report.violations);
            check_trace(&label, &sink, &m);
        }
    }
}

#[test]
fn parallel_runner_conserves_under_every_option_set() {
    let csr = graph();
    let n = csr.num_vertices();
    for (opt_name, opts) in option_sets() {
        let budget = MemoryBudget::new(1 << 20);
        let app = Arc::new(BasicRw::new(WALKERS, LENGTH, n));
        let runner = ParallelRunner::new(app, on_device(&csr), opts, Arc::clone(&budget));
        let mut sink = MemorySink::new();
        let m = runner.run_with_sink(SEED, 3, Some(&mut sink)).unwrap();
        let audit = RunAudit::with_floor(WALKERS, 0);
        let report = audit.verify(&m, &budget);
        assert!(
            report.is_clean(),
            "parallel/{opt_name}: {:?}",
            report.violations
        );
        check_trace(&format!("parallel/{opt_name}"), &sink, &m);
    }
}

#[test]
fn unbudgeted_engines_conserve() {
    let csr = Arc::new(graph());
    let n = csr.num_vertices();

    let app = Arc::new(BasicRw::new(WALKERS, LENGTH, n));
    let e = InMemory::new(
        app,
        Arc::clone(&csr),
        EngineOptions::default(),
        SsdProfile::nvme_p4618(),
    );
    let mut sink = MemorySink::new();
    let m = e.run_with_sink(SEED, Some(&mut sink));
    let report = RunAudit::with_floor(WALKERS, 0).verify_metrics(&m);
    assert!(report.is_clean(), "inmemory: {:?}", report.violations);
    check_trace("inmemory", &sink, &m);

    let app = Arc::new(BasicRw::new(WALKERS, LENGTH, n));
    let e = DistributedSim::new(
        app,
        Arc::clone(&csr),
        EngineOptions::default(),
        4,
        SsdProfile::nvme_p4618(),
        NetworkProfile::ten_gbe(),
    );
    let mut sink = MemorySink::new();
    let m = e.run_with_sink(SEED, Some(&mut sink));
    let report = RunAudit::with_floor(WALKERS, 0).verify_metrics(&m);
    assert!(report.is_clean(), "distributed: {:?}", report.violations);
    check_trace("distributed", &sink, &m);
}

#[test]
fn second_order_engines_conserve() {
    let csr = graph().to_undirected();
    let n = csr.num_vertices();
    let total = n as u64; // one walker per vertex

    // `base`/`with_shrink_block` disable the walker management the
    // second-order path requires, so only the managed option sets apply.
    for (opt_name, opts) in [
        ("default", EngineOptions::default()),
        ("full", EngineOptions::full()),
    ] {
        let budget = MemoryBudget::new(1 << 20);
        let app = Arc::new(Node2Vec::new(n, 1, LENGTH, 2.0, 0.5));
        let e = NosWalkerEngine::new(app, on_device(&csr), opts, Arc::clone(&budget));
        let mut sink = MemorySink::new();
        let m = e.run_second_order_with_sink(SEED, Some(&mut sink)).unwrap();
        let audit = RunAudit::with_floor(total, 0);
        let report = audit.verify(&m, &budget);
        assert!(
            report.is_clean(),
            "noswalker-2nd/{opt_name}: {:?}",
            report.violations
        );
        check_trace(&format!("noswalker-2nd/{opt_name}"), &sink, &m);
    }

    let budget = MemoryBudget::new(1 << 20);
    let app = Arc::new(Node2Vec::new(n, 1, LENGTH, 2.0, 0.5));
    let e = GraSorw::new(
        app,
        on_device(&csr),
        EngineOptions::default(),
        Arc::clone(&budget),
    );
    let mut sink = MemorySink::new();
    let m = e.run_with_sink(SEED, Some(&mut sink)).unwrap();
    let audit = RunAudit::with_floor(total, 0);
    let report = audit.verify(&m, &budget);
    assert!(report.is_clean(), "grasorw: {:?}", report.violations);
    check_trace("grasorw", &sink, &m);
}
