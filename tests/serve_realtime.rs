//! Realtime-async serving pins.
//!
//! **Cross-mode parity**: the realtime driver replaying a submitted
//! trace under an injected deterministic clock ([`IngressMode::Replay`]
//! with `ModelClock`) is *bit-identical* to the lockstep [`ServeEngine`]
//! on the same trace — outcomes, end time, round count, step count —
//! on the sequential and the parallel kernel. This is the whole point
//! of the TickCore extraction: realtime mode is a waiting policy, not
//! a different state machine.
//!
//! **Ingress accounting**: concurrent submitters racing cancels and a
//! shutdown never lose an accepted query — every submit that returned
//! `Ok` yields exactly one outcome, and none yields two.

use noswalker::core::{ModelClock, OnDiskGraph, QuerySpec, StaticQuerySource};
use noswalker::graph::generators::{self, RmatParams};
use noswalker::graph::Csr;
use noswalker::serve::{
    Backend, IngressMode, RealtimeOptions, RealtimeServer, ServeEngine, ServeOptions, ServeReport,
};
use noswalker::storage::{MemoryBudget, SimSsd, SsdProfile};
use std::collections::BTreeMap;
use std::sync::Arc;

const LENGTH: u32 = 8;

fn graph() -> Csr {
    generators::rmat(10, 10, RmatParams::default(), 47)
}

fn store(csr: &Csr) -> (Arc<OnDiskGraph>, Arc<MemoryBudget>) {
    let device = Arc::new(SimSsd::new(SsdProfile::nvme_p4618()));
    let g = Arc::new(OnDiskGraph::store(csr, device, csr.edge_region_bytes() / 16).unwrap());
    let budget = MemoryBudget::new((csr.edge_region_bytes() / 4).max(64 << 10));
    (g, budget)
}

fn opts(backend: Backend) -> ServeOptions {
    ServeOptions {
        backend,
        par_workers: 3,
        round_walkers: 256,
        ..ServeOptions::default()
    }
}

fn spec(id: u64, class: &str, walkers: u64, arrival_ns: u64) -> QuerySpec {
    QuerySpec {
        id,
        class: class.to_string(),
        walkers,
        walk_length: LENGTH,
        deadline_ns: None,
        arrival_ns,
    }
}

fn lockstep(csr: &Csr, backend: Backend, specs: Vec<QuerySpec>) -> ServeReport {
    let (g, budget) = store(csr);
    let e = ServeEngine::new(g, budget, opts(backend));
    let mut src = StaticQuerySource::new(specs);
    e.run(&mut src, None).expect("lockstep serve")
}

/// Runs the same trace through the realtime driver: submit everything
/// over the ingress channel, drain, and join — with a deterministic
/// injected clock, so the replay is a lockstep run wearing the async
/// protocol.
fn realtime_replay(csr: &Csr, backend: Backend, specs: Vec<QuerySpec>) -> ServeReport {
    let (g, budget) = store(csr);
    let srv = RealtimeServer::single(
        g,
        budget,
        opts(backend),
        RealtimeOptions {
            mode: IngressMode::Replay,
            ..RealtimeOptions::default()
        },
    );
    let h = srv.start_with_clock(Box::new(ModelClock::new()));
    for q in specs {
        h.submit_blocking(q).expect("submit");
    }
    h.drain_and_join().expect("realtime serve").report
}

fn trace() -> Vec<QuerySpec> {
    vec![
        spec(1, "ppr:7", 120, 0),
        spec(2, "basic", 90, 50),
        spec(3, "deepwalk:0", 80, 30_000),
        spec(4, "rwr:7:0.2", 70, 45_000),
    ]
}

fn assert_bit_identical(a: &ServeReport, b: &ServeReport) {
    assert_eq!(a.outcomes, b.outcomes, "per-query outcomes must match");
    assert_eq!(a.end_ns, b.end_ns, "modeled end time must match");
    assert_eq!(a.rounds, b.rounds, "round count must match");
    assert_eq!(a.metrics.steps, b.metrics.steps, "step count must match");
    assert_eq!(
        a.histograms.keys().collect::<Vec<_>>(),
        b.histograms.keys().collect::<Vec<_>>()
    );
}

#[test]
fn realtime_replay_is_bit_identical_to_lockstep_on_seq() {
    let csr = graph();
    let lock = lockstep(&csr, Backend::Seq, trace());
    let rt = realtime_replay(&csr, Backend::Seq, trace());
    assert_eq!(lock.completed_count(), 4);
    assert_bit_identical(&lock, &rt);
}

#[test]
fn realtime_replay_is_bit_identical_to_lockstep_on_par() {
    let csr = graph();
    let lock = lockstep(&csr, Backend::Par, trace());
    let rt = realtime_replay(&csr, Backend::Par, trace());
    assert_eq!(lock.completed_count(), 4);
    assert_bit_identical(&lock, &rt);
}

#[test]
fn concurrent_submits_and_cancels_racing_shutdown_lose_nothing() {
    const THREADS: u64 = 4;
    const PER_THREAD: u64 = 25;
    let csr = graph();
    let (g, budget) = store(&csr);
    let srv = RealtimeServer::single(
        g,
        budget,
        opts(Backend::Seq),
        RealtimeOptions::default(), // wall mode, live timestamps
    );
    let h = srv.start();

    let workers: Vec<_> = (0..THREADS)
        .map(|t| {
            let tx = h.sender();
            std::thread::spawn(move || {
                let mut accepted = Vec::new();
                for i in 0..PER_THREAD {
                    let id = t * 1_000 + i;
                    if tx.submit_blocking(spec(id, "basic", 40, 0)).is_ok() {
                        accepted.push(id);
                    }
                    // Cancel every fourth own query — wherever it is by
                    // now (ingress, admission, active, or already done).
                    if i % 4 == 3 {
                        let _ = tx.cancel(id);
                    }
                }
                accepted
            })
        })
        .collect();

    // Let the race actually overlap serving, then pull the rug.
    let victims: Vec<u64> = workers
        .into_iter()
        .flat_map(|w| w.join().expect("worker"))
        .collect();
    h.shutdown().expect("shutdown");
    let report = h.join().expect("serve thread").report;

    // Exactly one outcome per accepted submit: none lost, none doubled.
    let mut by_id: BTreeMap<u64, usize> = BTreeMap::new();
    for o in &report.outcomes {
        *by_id.entry(o.id).or_default() += 1;
    }
    assert_eq!(
        by_id.keys().copied().collect::<Vec<_>>(),
        {
            let mut v = victims.clone();
            v.sort_unstable();
            v
        },
        "every accepted submit gets an outcome, and only those"
    );
    assert!(
        by_id.values().all(|&n| n == 1),
        "no query may report twice: {by_id:?}"
    );
}

#[test]
fn shutdown_mid_serve_reports_degraded_partials_not_losses() {
    let csr = graph();
    let (g, budget) = store(&csr);
    let srv = RealtimeServer::single(
        g,
        budget,
        // A tiny round cap keeps queries in flight long enough for the
        // shutdown to land mid-serve.
        ServeOptions {
            backend: Backend::Seq,
            round_walkers: 16,
            ..ServeOptions::default()
        },
        RealtimeOptions::default(),
    );
    let mut h = srv.start();
    for id in 0..8 {
        h.submit_blocking(spec(id, "basic", 200, 0))
            .expect("submit");
    }
    // Outcomes stream while the server runs; whatever we saw before the
    // shutdown must still be present, verbatim, in the final report.
    let streamed = h.take_outcomes();
    h.shutdown().expect("shutdown");
    let report = h.join().expect("serve thread").report;
    assert_eq!(report.outcomes.len(), 8, "one outcome per submit");
    for (i, o) in streamed.iter().enumerate() {
        assert_eq!(&report.outcomes[i], o, "streamed prefix must be stable");
    }
}
