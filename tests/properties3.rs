//! Third wave of property tests: CLI parsing robustness and parallel
//! runner conservation under arbitrary worker counts.

use noswalker::apps::BasicRw;
use noswalker::core::parallel::ParallelRunner;
use noswalker::core::{EngineOptions, OnDiskGraph};
use noswalker::graph::generators;
use noswalker::storage::{MemoryBudget, SimSsd, SsdProfile};
use proptest::prelude::*;
use std::sync::Arc;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The CLI parser must never panic, whatever tokens it is fed —
    /// every input either parses or yields a user-readable error.
    #[test]
    fn cli_parser_never_panics(tokens in prop::collection::vec("[a-z0-9./=-]{0,12}", 0..10)) {
        let _ = noswalker_cli::args::parse(tokens);
    }

    /// Known-prefix fuzz: a valid subcommand followed by arbitrary flags.
    #[test]
    fn cli_run_subcommand_robust(tokens in prop::collection::vec("(--[a-z]{1,8}|[a-z0-9]{1,6})", 0..8)) {
        let mut args = vec!["run".to_string(), "g.csr".to_string()];
        args.extend(tokens);
        let _ = noswalker_cli::args::parse(args);
    }

    /// Walker and step conservation must hold for any worker count.
    #[test]
    fn parallel_runner_conserves_for_any_worker_count(
        workers in 1usize..12,
        walkers in 1u64..400,
        length in 1u32..7,
        seed in 0u64..100,
    ) {
        let csr = generators::uniform_degree(256, 4, 3);
        let device = Arc::new(SimSsd::new(SsdProfile::nvme_p4618()));
        let graph = Arc::new(OnDiskGraph::store(&csr, device, 512).unwrap());
        let app = Arc::new(BasicRw::new(walkers, length, 256));
        let m = ParallelRunner::new(
            Arc::clone(&app),
            graph,
            EngineOptions::default(),
            MemoryBudget::new(1 << 20),
        )
        .run(seed, workers)
        .unwrap();
        prop_assert_eq!(m.walkers_finished, walkers);
        prop_assert_eq!(m.steps, walkers * length as u64);
        prop_assert_eq!(m.steps, app.steps_taken());
    }
}
