//! Cross-backend serving parity: the same query trace replayed on the
//! sequential and the parallel [`noswalker::serve::Backend`] must produce
//! bit-identical per-query outcome digests and walker accounting under a
//! fixed seed. This is the pin for the serving layer's determinism model:
//! walker movement draws only walker-private randomness and serving
//! rounds force all-raw pre-sample retention, so *which kernel* runs a
//! round — and even *which round* a walker lands in — cannot change where
//! its walkers go. These run in release builds too.

use noswalker::core::audit::audit_queries;
use noswalker::core::{OnDiskGraph, QuerySpec, StaticQuerySource};
use noswalker::graph::generators::{self, RmatParams};
use noswalker::graph::Csr;
use noswalker::serve::{Backend, ServeEngine, ServeOptions, ServeReport};
use noswalker::storage::{MemoryBudget, SimSsd, SsdProfile};
use std::collections::BTreeMap;
use std::sync::Arc;

const LENGTH: u32 = 8;

fn graph() -> Csr {
    generators::rmat(10, 10, RmatParams::default(), 41)
}

fn run(csr: &Csr, backend: Backend, specs: Vec<QuerySpec>, round_walkers: u64) -> ServeReport {
    let device = Arc::new(SimSsd::new(SsdProfile::nvme_p4618()));
    let g = Arc::new(OnDiskGraph::store(csr, device, csr.edge_region_bytes() / 16).unwrap());
    let budget = MemoryBudget::new((csr.edge_region_bytes() / 4).max(64 << 10));
    let e = ServeEngine::new(
        g,
        budget,
        ServeOptions {
            backend,
            par_workers: 3,
            round_walkers,
            ..ServeOptions::default()
        },
    );
    let mut src = StaticQuerySource::new(specs);
    e.run(&mut src, None).expect("serve")
}

fn spec(id: u64, class: &str, walkers: u64, arrival_ns: u64) -> QuerySpec {
    QuerySpec {
        id,
        class: class.to_string(),
        walkers,
        walk_length: LENGTH,
        deadline_ns: None,
        arrival_ns,
    }
}

/// Per-query (digest, issued, completed, cancelled, shed) — the fields
/// that must be invariant across backends. Latency and `end_ns` are
/// *not* compared across backends: the two kernels charge the model
/// clock differently (fully-modeled pipeline time vs compute-only), by
/// design.
fn outcome_map(r: &ServeReport) -> BTreeMap<u64, (u64, u64, u64, u64, bool)> {
    r.outcomes
        .iter()
        .map(|o| {
            (
                o.id,
                (
                    o.digest,
                    o.stats.issued,
                    o.stats.completed,
                    o.stats.cancelled,
                    o.shed,
                ),
            )
        })
        .collect()
}

fn assert_clean(r: &ServeReport) {
    audit_queries(&r.query_stats()).assert_clean();
    for o in r.outcomes.iter().filter(|o| !o.shed) {
        assert_eq!(
            o.stats.issued,
            o.stats.completed + o.stats.cancelled,
            "query {}: conservation",
            o.id
        );
    }
}

#[test]
fn seq_and_par_backends_produce_identical_digests() {
    let csr = graph();
    let specs = vec![
        spec(1, "ppr:7", 120, 0),
        spec(2, "basic", 90, 50),
        spec(3, "deepwalk:0", 80, 100),
        spec(4, "rwr:7:0.2", 70, 150),
    ];
    let seq = run(&csr, Backend::Seq, specs.clone(), 4096);
    let par = run(&csr, Backend::Par, specs, 4096);
    assert_clean(&seq);
    assert_clean(&par);
    assert_eq!(seq.completed_count(), 4);
    assert_eq!(par.completed_count(), 4);
    assert_eq!(
        outcome_map(&seq),
        outcome_map(&par),
        "digests and walker accounting must be backend-invariant"
    );
    for o in &seq.outcomes {
        assert_ne!(o.digest, 0, "query {}", o.id);
    }
}

#[test]
fn digests_survive_rounds_splitting_differently_per_backend() {
    // A tiny per-round walker cap forces queries to span many rounds, and
    // the two backends advance the clock differently — so the *round
    // composition* genuinely diverges between the replays. Walker-private
    // streams keyed on (seed, query, global walker index) make the
    // digests identical anyway.
    let csr = graph();
    let specs = vec![
        spec(1, "basic", 300, 0),
        spec(2, "ppr:7", 200, 10_000),
        spec(3, "rwr:7:0.3", 150, 20_000),
    ];
    let seq = run(&csr, Backend::Seq, specs.clone(), 64);
    let par = run(&csr, Backend::Par, specs, 64);
    assert_clean(&seq);
    assert_clean(&par);
    assert!(seq.rounds > 3, "cap must force multi-round queries");
    assert_eq!(outcome_map(&seq), outcome_map(&par));
}

#[test]
fn par_backend_replays_are_bit_identical() {
    // Run-to-run determinism of the parallel backend itself: movement is
    // walker-private and the clock charge is compute-only, so latencies
    // and end time replay exactly even though host thread interleaving
    // differs between runs.
    let csr = graph();
    let specs = vec![spec(1, "basic", 250, 0), spec(2, "deepwalk:0", 120, 500)];
    let a = run(&csr, Backend::Par, specs.clone(), 128);
    let b = run(&csr, Backend::Par, specs, 128);
    assert_eq!(a.outcomes, b.outcomes);
    assert_eq!(a.end_ns, b.end_ns);
    assert_eq!(a.rounds, b.rounds);
    assert_eq!(a.metrics.steps, b.metrics.steps);
}

#[test]
fn auto_backend_matches_seq_digests_with_mixed_deadline_classes() {
    // Auto routes deadline-constrained queries to the sequential kernel
    // and best-effort ones to the parallel kernel — possibly both within
    // one round. Deadlines are generous enough that nothing is cancelled,
    // so every backend choice must land on the same digests.
    let csr = graph();
    let mut specs = vec![
        spec(1, "ppr:7", 100, 0),
        spec(2, "basic", 100, 0),
        spec(3, "rwr:7:0.2", 80, 100),
    ];
    specs[0].deadline_ns = Some(u64::MAX / 2);
    specs[2].deadline_ns = Some(u64::MAX / 2);
    let seq = run(&csr, Backend::Seq, specs.clone(), 4096);
    let auto = run(&csr, Backend::Auto, specs, 4096);
    assert_clean(&seq);
    assert_clean(&auto);
    assert_eq!(auto.deadline_miss_count(), 0);
    assert_eq!(outcome_map(&seq), outcome_map(&auto));
}
