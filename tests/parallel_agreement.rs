//! The real concurrent runner must produce the same walk *semantics* as
//! the deterministic simulation engine — thread interleavings may permute
//! RNG draws, but conservation laws and stationary statistics must agree.

use noswalker::apps::{BasicRw, Ppr};
use noswalker::core::apps_prelude::*;
use noswalker::core::parallel::ParallelRunner;
use noswalker::core::{EngineOptions, NosWalkerEngine, OnDiskGraph};
use noswalker::graph::generators::{self, RmatParams};
use noswalker::graph::Csr;
use noswalker::storage::{MemoryBudget, SimSsd, SsdProfile};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

fn graph() -> Csr {
    generators::rmat(12, 12, RmatParams::default(), 55)
}

fn on_device(csr: &Csr) -> Arc<OnDiskGraph> {
    let device = Arc::new(SimSsd::new(SsdProfile::nvme_p4618()));
    Arc::new(OnDiskGraph::store(csr, device, csr.edge_region_bytes() / 24).unwrap())
}

#[test]
fn step_conservation_matches_sequential_engine() {
    // Uniform graph → exact step counts on both execution modes.
    let csr = generators::uniform_degree(1 << 11, 6, 9);
    let app = Arc::new(BasicRw::new(4000, 7, csr.num_vertices()));
    let m_par = ParallelRunner::new(
        Arc::clone(&app),
        on_device(&csr),
        EngineOptions::default(),
        MemoryBudget::new(1 << 20),
    )
    .run(3, 4)
    .unwrap();
    let app2 = Arc::new(BasicRw::new(4000, 7, csr.num_vertices()));
    let m_seq = NosWalkerEngine::new(
        Arc::clone(&app2),
        on_device(&csr),
        EngineOptions::default(),
        MemoryBudget::new(1 << 20),
    )
    .run(3)
    .unwrap();
    assert_eq!(m_par.steps, 4000 * 7);
    assert_eq!(m_seq.steps, 4000 * 7);
    assert_eq!(m_par.walkers_finished, m_seq.walkers_finished);
}

#[test]
fn ppr_statistics_agree_with_sequential_engine() {
    let csr = graph();
    let sources = vec![2u32, 33, 444];
    let make = || Arc::new(Ppr::new(sources.clone(), 3000, 10, csr.num_vertices()));

    let par_app = make();
    ParallelRunner::new(
        Arc::clone(&par_app),
        on_device(&csr),
        EngineOptions::default(),
        MemoryBudget::new(1 << 20),
    )
    .run(7, 4)
    .unwrap();

    let seq_app = make();
    NosWalkerEngine::new(
        Arc::clone(&seq_app),
        on_device(&csr),
        EngineOptions::default(),
        MemoryBudget::new(1 << 20),
    )
    .run(7)
    .unwrap();

    let (pe, se) = (par_app.estimate(), seq_app.estimate());
    let l1: f64 = pe.iter().zip(&se).map(|(a, b)| (a - b).abs()).sum();
    assert!(
        l1 < 0.25,
        "L1 distance {l1} between parallel and sequential"
    );
    assert_eq!(
        par_app.top_k(1)[0].0,
        seq_app.top_k(1)[0].0,
        "top hub differs"
    );
}

/// A fixed-length uniform walk that histograms every vertex it lands on.
#[derive(Debug)]
struct VisitCount {
    walkers: u64,
    length: u32,
    n: u32,
    visits: Vec<AtomicU64>,
}

impl VisitCount {
    fn new(walkers: u64, length: u32, n: usize) -> Arc<Self> {
        Arc::new(VisitCount {
            walkers,
            length,
            n: n as u32,
            visits: (0..n).map(|_| AtomicU64::new(0)).collect(),
        })
    }

    fn distribution(&self) -> Vec<f64> {
        let total: u64 = self.visits.iter().map(|v| v.load(Ordering::Relaxed)).sum();
        self.visits
            .iter()
            .map(|v| v.load(Ordering::Relaxed) as f64 / total.max(1) as f64)
            .collect()
    }
}

impl Walk for VisitCount {
    type Walker = (VertexId, u32);
    fn total_walkers(&self) -> u64 {
        self.walkers
    }
    fn generate(&self, n: u64, _r: &mut WalkRng) -> Self::Walker {
        ((n % self.n as u64) as VertexId, 0)
    }
    fn location(&self, w: &Self::Walker) -> VertexId {
        w.0
    }
    fn is_active(&self, w: &Self::Walker) -> bool {
        w.1 < self.length
    }
    fn sample(&self, v: &VertexEdges<'_>, r: &mut WalkRng) -> VertexId {
        uniform_sample(v, r)
    }
    fn action(&self, w: &mut Self::Walker, next: VertexId, _r: &mut WalkRng) -> bool {
        self.visits[next as usize].fetch_add(1, Ordering::Relaxed);
        *w = (next, w.1 + 1);
        true
    }
}

/// The batched step kernel (per-bucket pool draining, lock-free claims)
/// must visit vertices with the same stationary distribution as the
/// sequential engine's one-walker-at-a-time loop.
#[test]
fn batched_kernel_matches_sequential_distribution() {
    let csr = graph();
    let walkers = 6000;
    let length = 12;

    let par_app = VisitCount::new(walkers, length, csr.num_vertices());
    let m_par = ParallelRunner::new(
        Arc::clone(&par_app),
        on_device(&csr),
        EngineOptions::default(),
        MemoryBudget::new(1 << 20),
    )
    .run(21, 4)
    .unwrap();

    let seq_app = VisitCount::new(walkers, length, csr.num_vertices());
    let m_seq = NosWalkerEngine::new(
        Arc::clone(&seq_app),
        on_device(&csr),
        EngineOptions::default(),
        MemoryBudget::new(1 << 20),
    )
    .run(21)
    .unwrap();

    // Every walker completes on both engines; step totals differ only by
    // which RNG draws hit dead ends, so compare distributions instead.
    assert_eq!(m_par.walkers_finished, walkers);
    assert_eq!(m_seq.walkers_finished, walkers);
    let (pd, sd) = (par_app.distribution(), seq_app.distribution());
    let l1: f64 = pd.iter().zip(&sd).map(|(a, b)| (a - b).abs()).sum();
    assert!(
        l1 < 0.2,
        "L1 distance {l1} between batched-kernel and sequential visit distributions"
    );
}

#[test]
fn worker_count_does_not_change_conservation() {
    let csr = generators::uniform_degree(1 << 10, 4, 5);
    for workers in [1usize, 2, 3, 8] {
        let app = Arc::new(BasicRw::new(1500, 5, csr.num_vertices()));
        let m = ParallelRunner::new(
            app,
            on_device(&csr),
            EngineOptions::default(),
            MemoryBudget::new(1 << 20),
        )
        .run(1, workers)
        .unwrap();
        assert_eq!(m.steps, 1500 * 5, "workers = {workers}");
        assert_eq!(m.walkers_finished, 1500, "workers = {workers}");
    }
}
