//! The real concurrent runner must produce the same walk *semantics* as
//! the deterministic simulation engine — thread interleavings may permute
//! RNG draws, but conservation laws and stationary statistics must agree.

use noswalker::apps::{BasicRw, Ppr};
use noswalker::core::parallel::ParallelRunner;
use noswalker::core::{EngineOptions, NosWalkerEngine, OnDiskGraph};
use noswalker::graph::generators::{self, RmatParams};
use noswalker::graph::Csr;
use noswalker::storage::{MemoryBudget, SimSsd, SsdProfile};
use std::sync::Arc;

fn graph() -> Csr {
    generators::rmat(12, 12, RmatParams::default(), 55)
}

fn on_device(csr: &Csr) -> Arc<OnDiskGraph> {
    let device = Arc::new(SimSsd::new(SsdProfile::nvme_p4618()));
    Arc::new(OnDiskGraph::store(csr, device, csr.edge_region_bytes() / 24).unwrap())
}

#[test]
fn step_conservation_matches_sequential_engine() {
    // Uniform graph → exact step counts on both execution modes.
    let csr = generators::uniform_degree(1 << 11, 6, 9);
    let app = Arc::new(BasicRw::new(4000, 7, csr.num_vertices()));
    let m_par = ParallelRunner::new(
        Arc::clone(&app),
        on_device(&csr),
        EngineOptions::default(),
        MemoryBudget::new(1 << 20),
    )
    .run(3, 4)
    .unwrap();
    let app2 = Arc::new(BasicRw::new(4000, 7, csr.num_vertices()));
    let m_seq = NosWalkerEngine::new(
        Arc::clone(&app2),
        on_device(&csr),
        EngineOptions::default(),
        MemoryBudget::new(1 << 20),
    )
    .run(3)
    .unwrap();
    assert_eq!(m_par.steps, 4000 * 7);
    assert_eq!(m_seq.steps, 4000 * 7);
    assert_eq!(m_par.walkers_finished, m_seq.walkers_finished);
}

#[test]
fn ppr_statistics_agree_with_sequential_engine() {
    let csr = graph();
    let sources = vec![2u32, 33, 444];
    let make = || Arc::new(Ppr::new(sources.clone(), 3000, 10, csr.num_vertices()));

    let par_app = make();
    ParallelRunner::new(
        Arc::clone(&par_app),
        on_device(&csr),
        EngineOptions::default(),
        MemoryBudget::new(1 << 20),
    )
    .run(7, 4)
    .unwrap();

    let seq_app = make();
    NosWalkerEngine::new(
        Arc::clone(&seq_app),
        on_device(&csr),
        EngineOptions::default(),
        MemoryBudget::new(1 << 20),
    )
    .run(7)
    .unwrap();

    let (pe, se) = (par_app.estimate(), seq_app.estimate());
    let l1: f64 = pe.iter().zip(&se).map(|(a, b)| (a - b).abs()).sum();
    assert!(
        l1 < 0.25,
        "L1 distance {l1} between parallel and sequential"
    );
    assert_eq!(
        par_app.top_k(1)[0].0,
        seq_app.top_k(1)[0].0,
        "top hub differs"
    );
}

#[test]
fn worker_count_does_not_change_conservation() {
    let csr = generators::uniform_degree(1 << 10, 4, 5);
    for workers in [1usize, 2, 3, 8] {
        let app = Arc::new(BasicRw::new(1500, 5, csr.num_vertices()));
        let m = ParallelRunner::new(
            app,
            on_device(&csr),
            EngineOptions::default(),
            MemoryBudget::new(1 << 20),
        )
        .run(1, workers)
        .unwrap();
        assert_eq!(m.steps, 1500 * 5, "workers = {workers}");
        assert_eq!(m.walkers_finished, 1500, "workers = {workers}");
    }
}
