//! Verifies that each baseline actually implements its paper-described
//! scheduling policy — the property the system comparison rests on.

use noswalker::apps::BasicRw;
use noswalker::baselines::{DrunkardMob, GraphWalker, Graphene};
use noswalker::core::{EngineOptions, NosWalkerEngine, OnDiskGraph};
use noswalker::graph::generators::{self, RmatParams};
use noswalker::graph::CsrBuilder;
use noswalker::storage::{MemoryBudget, SimSsd, SsdProfile};
use std::sync::Arc;

#[test]
fn drunkardmob_moves_one_step_per_epoch() {
    // A directed ring: a walker needs exactly L epochs of its block being
    // loaded, so DrunkardMob's synchronized one-step model is directly
    // observable in the load count.
    let n = 64u32;
    let mut b = CsrBuilder::new(n as usize);
    for v in 0..n {
        b.push_edge(v, (v + 1) % n);
    }
    let csr = b.build();
    let device = Arc::new(SimSsd::new(SsdProfile::nvme_p4618()));
    // One block per 16 vertices → 4 blocks.
    let graph = Arc::new(OnDiskGraph::store(&csr, device, 64).unwrap());
    // One walker, 8 steps, starting at vertex 0. Budget too small to cache
    // every block (4 blocks × 64 B, keep < 2 blocks cached beyond the
    // walker state).
    let app = Arc::new(BasicRw::new(1, 8, n as usize));
    let dm = DrunkardMob::new(
        app,
        Arc::clone(&graph),
        EngineOptions::default(),
        MemoryBudget::new(192),
    );
    let m = dm.run(1).unwrap();
    assert_eq!(m.steps, 8);
    // One step per epoch: the walker never leaves block 0 (vertices
    // 0..16), so the page cache absorbs the reloads — but GraphChi's
    // per-epoch shard write-back is unavoidable and counts one block per
    // epoch: exactly 8 epochs for 8 steps.
    assert_eq!(m.swap_bytes, 8 * 64, "expected 8 one-step epochs");
}

#[test]
fn graphwalker_reentry_uses_one_load_for_in_block_chains() {
    // Same ring, same budget: GraphWalker's re-entry moves the walker as
    // far as the block allows per load, so it needs far fewer loads.
    let n = 64u32;
    let mut b = CsrBuilder::new(n as usize);
    for v in 0..n {
        b.push_edge(v, (v + 1) % n);
    }
    let csr = b.build();
    let device = Arc::new(SimSsd::new(SsdProfile::nvme_p4618()));
    let graph = Arc::new(OnDiskGraph::store(&csr, device, 64).unwrap());
    let app = Arc::new(BasicRw::new(1, 8, n as usize));
    let gw = GraphWalker::new(
        app,
        Arc::clone(&graph),
        EngineOptions::default(),
        MemoryBudget::new(192),
    );
    let m = gw.run(1).unwrap();
    assert_eq!(m.steps, 8);
    // 8 steps from vertex 0 stay inside block 0 (vertices 0..16): one load.
    assert_eq!(m.coarse_loads, 1, "re-entry should need a single load");
}

#[test]
fn graphwalker_beats_drunkardmob_on_loads_at_scale() {
    let csr = generators::rmat(11, 8, RmatParams::default(), 3);
    let run_loads = |gw: bool| {
        let device = Arc::new(SimSsd::new(SsdProfile::nvme_p4618()));
        let graph = Arc::new(OnDiskGraph::store(&csr, device, 1024).unwrap());
        let app = Arc::new(BasicRw::new(500, 10, csr.num_vertices()));
        let budget = MemoryBudget::new(32 << 10);
        if gw {
            GraphWalker::new(app, graph, EngineOptions::default(), budget)
                .run(5)
                .unwrap()
                .edge_bytes_loaded
        } else {
            DrunkardMob::new(app, graph, EngineOptions::default(), budget)
                .run(5)
                .unwrap()
                .edge_bytes_loaded
        }
    };
    let (gw, dm) = (run_loads(true), run_loads(false));
    assert!(gw < dm, "GraphWalker {gw} bytes vs DrunkardMob {dm} bytes");
}

#[test]
fn graphene_issues_only_fine_grained_io() {
    let csr = generators::rmat(11, 8, RmatParams::default(), 7);
    let device = Arc::new(SimSsd::new(SsdProfile::nvme_p4618()));
    let graph = Arc::new(OnDiskGraph::store(&csr, device, 4096).unwrap());
    let app = Arc::new(BasicRw::new(100, 6, csr.num_vertices()));
    let m = Graphene::new(
        app,
        graph,
        EngineOptions::default(),
        MemoryBudget::new(1 << 20),
    )
    .run(3)
    .unwrap();
    assert_eq!(m.coarse_loads, 0);
    assert!(m.fine_loads > 0);
    // On-demand I/O loads less than the ~12 full graph sweeps a coarse
    // scan of 100 sparse walkers would.
    assert!(m.edge_bytes_loaded < csr.edge_region_bytes() * 6);
}

#[test]
fn noswalker_fine_mode_loads_pages_not_blocks() {
    let csr = generators::rmat(14, 16, RmatParams::default(), 9);
    let device = Arc::new(SimSsd::new(SsdProfile::nvme_p4618()));
    let graph = Arc::new(OnDiskGraph::store(&csr, device, 32 << 10).unwrap());
    // Few walkers on a big graph: fine mode from the start.
    let app = Arc::new(BasicRw::new(20, 10, csr.num_vertices()));
    let m = NosWalkerEngine::new(
        app,
        graph,
        EngineOptions::default(),
        MemoryBudget::new(256 << 10),
    )
    .run(4)
    .unwrap();
    assert!(m.fine_mode_at_step.is_some(), "fine mode should engage");
    assert!(m.fine_loads > 0);
    // Fine-grained I/O is 4 KiB-page-bounded: ~one page per stalled
    // vertex per step (the paper's SSD-page floor), far below the 32 KiB
    // coarse block each step would otherwise drag in.
    assert!(
        m.edge_bytes_loaded < m.steps * 4096 * 2,
        "fine mode loaded {} for {} steps",
        m.edge_bytes_loaded,
        m.steps
    );
    assert!(m.edge_bytes_loaded < csr.edge_region_bytes());
}

#[test]
fn weighted_alias_graph_runs_end_to_end_on_noswalker() {
    let csr =
        generators::with_random_weights(generators::rmat(11, 8, RmatParams::default(), 13), 13);
    assert!(csr.has_alias_tables());
    let device = Arc::new(SimSsd::new(SsdProfile::nvme_p4618()));
    let graph = Arc::new(OnDiskGraph::store(&csr, device, 4096).unwrap());
    assert_eq!(graph.format().record_bytes(), 12);
    let app = Arc::new(noswalker::apps::WeightedRw::new(
        2000,
        8,
        csr.num_vertices(),
    ));
    let m = NosWalkerEngine::new(
        app,
        graph,
        EngineOptions::default(),
        MemoryBudget::new(64 << 10),
    )
    .run(6)
    .unwrap();
    assert_eq!(m.walkers_finished, 2000);
    assert!(m.steps > 0);
}
