//! Collection strategies (`prop::collection::vec`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::Rng;
use std::ops::Range;

/// A length specification for collection strategies.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    /// Exclusive upper bound.
    hi: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n + 1 }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty collection size range");
        SizeRange {
            lo: r.start,
            hi: r.end,
        }
    }
}

/// A strategy producing `Vec`s whose elements come from `element`.
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

/// Generates vectors with lengths drawn from `size` and elements from
/// `element`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        let len = rng.gen_range(self.size.lo..self.size.hi);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}
