//! The [`Strategy`] trait and the combinators / primitive strategies the
//! workspace's tests use.

use crate::test_runner::TestRng;
use rand::{Rng, SampleUniform};
use std::ops::{Range, RangeInclusive};

/// A recipe for generating random values of type `Value`.
///
/// Unlike real proptest there is no value *tree* (no shrinking): a
/// strategy simply draws a value from the RNG.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Derives a dependent strategy from each generated value.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    /// Maps generated values through `f`.
    fn prop_map<T, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> T,
    {
        Map { inner: self, f }
    }

    /// Retries generation until `f` accepts the value (up to a bounded
    /// number of draws, then panics).
    fn prop_filter<F>(self, whence: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            whence,
            f,
        }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<I, F> {
    inner: I,
    f: F,
}

impl<I, S, F> Strategy for FlatMap<I, F>
where
    I: Strategy,
    S: Strategy,
    F: Fn(I::Value) -> S,
{
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<I, F> {
    inner: I,
    f: F,
}

impl<I, T, F> Strategy for Map<I, F>
where
    I: Strategy,
    F: Fn(I::Value) -> T,
{
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_filter`].
#[derive(Debug, Clone)]
pub struct Filter<I, F> {
    inner: I,
    whence: &'static str,
    f: F,
}

impl<I, F> Strategy for Filter<I, F>
where
    I: Strategy,
    F: Fn(&I::Value) -> bool,
{
    type Value = I::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        for _ in 0..1000 {
            let v = self.inner.generate(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter {:?} rejected 1000 consecutive draws",
            self.whence
        );
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

impl<T: SampleUniform> Strategy for Range<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        rng.gen_range(self.clone())
    }
}

impl<T: SampleUniform> Strategy for RangeInclusive<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        rng.gen_range(self.clone())
    }
}

/// String literals are regex strategies (subset; see [`crate::string`]).
impl Strategy for str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        crate::string::generate_from_pattern(self, rng)
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
