//! The runner-facing types: configuration, the per-case RNG, and the
//! error type `prop_assert!` / `prop_assume!` return.

use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Per-test configuration (only the `cases` knob is honoured).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of accepted random cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Configuration running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// The RNG strategies draw from. Deterministic per case index so reruns
/// reproduce the same inputs.
pub type TestRng = SmallRng;

/// Builds the deterministic generator for case number `case` (used by the
/// `proptest!` expansion).
pub fn new_case_rng(case: u64) -> TestRng {
    SmallRng::seed_from_u64(0x5eed_0000_0000_0000 ^ case)
}

/// Why a test case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// The case hit a failed `prop_assert!`.
    Fail(String),
    /// The case was rejected by `prop_assume!` (retried, not counted).
    Reject(String),
}
