//! The `any::<T>()` entry point over a minimal [`Arbitrary`] trait.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::Rng;

/// Types with a canonical full-range strategy.
pub trait Arbitrary: Sized {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// The strategy returned by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct AnyStrategy<T>(std::marker::PhantomData<T>);

/// A strategy for unconstrained values of `T`.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(std::marker::PhantomData)
}

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_arbitrary_via_gen {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.gen()
            }
        }
    )*};
}

impl_arbitrary_via_gen!(bool, u8, u16, u32, u64, usize, f32, f64);

impl Arbitrary for i32 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.gen::<u32>() as i32
    }
}

impl Arbitrary for i64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.gen::<u64>() as i64
    }
}
