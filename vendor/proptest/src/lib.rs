//! A self-contained stand-in for the subset of `proptest` this workspace
//! uses, for fully offline builds.
//!
//! Differences from real proptest: failing cases are **not shrunk** (the
//! failing inputs are printed as-is), and regex string strategies support
//! only the pattern subset the workspace's tests use (character classes,
//! alternation groups, and `{m,n}` repetition).

#![warn(missing_docs)]

pub mod arbitrary;
#[path = "bool_strategy.rs"]
pub mod bool;
pub mod collection;
pub mod strategy;
pub mod string;
pub mod test_runner;

/// Namespace mirror so `prop::collection::vec(..)` and `prop::bool::ANY`
/// work after `use proptest::prelude::*`.
pub mod prop {
    pub use crate::bool;
    pub use crate::collection;
    pub use crate::string;
}

/// The glob-import surface used by tests.
pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::prop;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Defines property tests. Each `#[test] fn name(pat in strategy, ...)`
/// item becomes a zero-argument test that runs `config.cases` random
/// cases. Rejected cases (`prop_assume!`) are retried without counting.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    ( ($config:expr)
      $(
        $(#[$meta:meta])*
        fn $name:ident ( $( $pat:pat in $strat:expr ),* $(,)? ) $body:block
      )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::test_runner::ProptestConfig = $config;
                let mut __done: u32 = 0;
                let mut __attempt: u64 = 0;
                let __max_attempts: u64 = __config.cases as u64 * 16 + 256;
                while __done < __config.cases {
                    __attempt += 1;
                    assert!(
                        __attempt <= __max_attempts,
                        "proptest: too many rejected cases ({} accepted of {} wanted)",
                        __done,
                        __config.cases
                    );
                    let mut __rng = $crate::test_runner::new_case_rng(__attempt);
                    $(
                        let $pat =
                            $crate::strategy::Strategy::generate(&($strat), &mut __rng);
                    )*
                    let __result: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| {
                            $body
                            #[allow(unreachable_code)]
                            ::std::result::Result::Ok(())
                        })();
                    match __result {
                        ::std::result::Result::Ok(()) => __done += 1,
                        ::std::result::Result::Err(
                            $crate::test_runner::TestCaseError::Reject(_),
                        ) => {}
                        ::std::result::Result::Err(
                            $crate::test_runner::TestCaseError::Fail(__msg),
                        ) => {
                            panic!("proptest case #{} failed: {}", __done, __msg);
                        }
                    }
                }
            }
        )*
    };
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::Fail(format!($($fmt)+)),
            );
        }
    };
}

/// Fails the current case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (__l, __r) => {
                $crate::prop_assert!(
                    *__l == *__r,
                    "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`",
                    __l,
                    __r
                );
            }
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        match (&$left, &$right) {
            (__l, __r) => {
                $crate::prop_assert!(*__l == *__r, $($fmt)+);
            }
        }
    };
}

/// Fails the current case unless `left != right`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (__l, __r) => {
                $crate::prop_assert!(
                    *__l != *__r,
                    "assertion failed: `(left != right)`\n  left: `{:?}`\n right: `{:?}`",
                    __l,
                    __r
                );
            }
        }
    };
}

/// Rejects (skips) the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(
                stringify!($cond).to_string(),
            ));
        }
    };
}
