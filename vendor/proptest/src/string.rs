//! String generation from a small regex subset.
//!
//! Supported syntax: literal characters, `\`-escapes, character classes
//! `[a-z0-9./=-]` (ranges plus literals; a trailing `-` is literal),
//! groups with alternation `(foo|ba[rz])`, and repetition `{m}`, `{m,n}`,
//! `?`, `*`, `+` (the unbounded forms cap at 8). Anything else panics —
//! loudly, so an unsupported test pattern is caught immediately.

use crate::test_runner::TestRng;
use rand::Rng;

#[derive(Debug, Clone)]
enum Atom {
    Lit(char),
    Class(Vec<char>),
    Group(Vec<Vec<(Atom, Rep)>>),
}

#[derive(Debug, Clone, Copy)]
struct Rep {
    min: u32,
    max: u32, // inclusive
}

const ONCE: Rep = Rep { min: 1, max: 1 };

/// Generates one string matching `pattern`.
///
/// # Panics
///
/// Panics on syntax outside the supported subset.
pub fn generate_from_pattern(pattern: &str, rng: &mut TestRng) -> String {
    let mut chars = pattern.chars().peekable();
    let seq = parse_seq(&mut chars, pattern, false);
    assert!(
        chars.next().is_none(),
        "unbalanced ')' in string strategy pattern {pattern:?}"
    );
    let mut out = String::new();
    emit_seq(&seq, rng, &mut out);
    out
}

type Chars<'a> = std::iter::Peekable<std::str::Chars<'a>>;

fn parse_seq(chars: &mut Chars<'_>, pattern: &str, in_group: bool) -> Vec<(Atom, Rep)> {
    let mut seq = Vec::new();
    while let Some(&c) = chars.peek() {
        if in_group && (c == '|' || c == ')') {
            break;
        }
        chars.next();
        let atom = match c {
            '[' => parse_class(chars, pattern),
            '(' => parse_group(chars, pattern),
            '\\' => Atom::Lit(
                chars
                    .next()
                    .unwrap_or_else(|| panic!("dangling escape in pattern {pattern:?}")),
            ),
            '.' => Atom::Class(('a'..='z').chain('0'..='9').collect()),
            ']' | ')' | '|' | '{' | '}' | '*' | '+' | '?' => {
                panic!("unsupported regex syntax {c:?} in string strategy pattern {pattern:?}")
            }
            _ => Atom::Lit(c),
        };
        let rep = parse_rep(chars, pattern);
        seq.push((atom, rep));
    }
    seq
}

fn parse_class(chars: &mut Chars<'_>, pattern: &str) -> Atom {
    let mut members = Vec::new();
    let mut prev: Option<char> = None;
    loop {
        let c = chars
            .next()
            .unwrap_or_else(|| panic!("unterminated '[' in pattern {pattern:?}"));
        match c {
            ']' => break,
            '^' if prev.is_none() && members.is_empty() => {
                panic!("negated classes are unsupported in string strategy pattern {pattern:?}")
            }
            '-' => {
                // Range if both endpoints exist and '-' is not trailing.
                match (prev.take(), chars.peek().copied()) {
                    (Some(lo), Some(hi)) if hi != ']' => {
                        chars.next();
                        assert!(
                            lo <= hi,
                            "inverted class range {lo}-{hi} in pattern {pattern:?}"
                        );
                        members.extend(lo..=hi);
                    }
                    _ => members.push('-'),
                }
            }
            '\\' => {
                if let Some(p) = prev.take() {
                    members.push(p);
                }
                prev = Some(
                    chars
                        .next()
                        .unwrap_or_else(|| panic!("dangling escape in pattern {pattern:?}")),
                );
            }
            _ => {
                if let Some(p) = prev.take() {
                    members.push(p);
                }
                prev = Some(c);
            }
        }
    }
    if let Some(p) = prev {
        members.push(p);
    }
    assert!(!members.is_empty(), "empty class in pattern {pattern:?}");
    Atom::Class(members)
}

fn parse_group(chars: &mut Chars<'_>, pattern: &str) -> Atom {
    let mut alts = Vec::new();
    loop {
        alts.push(parse_seq(chars, pattern, true));
        match chars.next() {
            Some('|') => continue,
            Some(')') => break,
            _ => panic!("unterminated '(' in pattern {pattern:?}"),
        }
    }
    Atom::Group(alts)
}

fn parse_rep(chars: &mut Chars<'_>, pattern: &str) -> Rep {
    match chars.peek() {
        Some('{') => {
            chars.next();
            let mut body = String::new();
            loop {
                match chars.next() {
                    Some('}') => break,
                    Some(c) => body.push(c),
                    None => panic!("unterminated '{{' in pattern {pattern:?}"),
                }
            }
            let parse = |s: &str| -> u32 {
                s.trim()
                    .parse()
                    .unwrap_or_else(|_| panic!("bad repetition {body:?} in pattern {pattern:?}"))
            };
            match body.split_once(',') {
                Some((lo, hi)) => Rep {
                    min: parse(lo),
                    max: parse(hi),
                },
                None => {
                    let n = parse(&body);
                    Rep { min: n, max: n }
                }
            }
        }
        Some('?') => {
            chars.next();
            Rep { min: 0, max: 1 }
        }
        Some('*') => {
            chars.next();
            Rep { min: 0, max: 8 }
        }
        Some('+') => {
            chars.next();
            Rep { min: 1, max: 8 }
        }
        _ => ONCE,
    }
}

fn emit_seq(seq: &[(Atom, Rep)], rng: &mut TestRng, out: &mut String) {
    for (atom, rep) in seq {
        let n = rng.gen_range(rep.min..=rep.max);
        for _ in 0..n {
            emit_atom(atom, rng, out);
        }
    }
}

fn emit_atom(atom: &Atom, rng: &mut TestRng, out: &mut String) {
    match atom {
        Atom::Lit(c) => out.push(*c),
        Atom::Class(members) => out.push(members[rng.gen_range(0..members.len())]),
        Atom::Group(alts) => {
            let alt = &alts[rng.gen_range(0..alts.len())];
            emit_seq(alt, rng, out);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::new_case_rng;

    #[test]
    fn class_with_ranges_and_trailing_dash() {
        let mut rng = new_case_rng(1);
        for _ in 0..200 {
            let s = generate_from_pattern("[a-z0-9./=-]{0,12}", &mut rng);
            assert!(s.len() <= 12);
            assert!(s
                .chars()
                .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || "./=-".contains(c)));
        }
    }

    #[test]
    fn alternation_groups() {
        let mut rng = new_case_rng(2);
        for _ in 0..200 {
            let s = generate_from_pattern("(--[a-z]{1,8}|[a-z0-9]{1,6})", &mut rng);
            if let Some(rest) = s.strip_prefix("--") {
                assert!((1..=8).contains(&rest.len()));
                assert!(rest.chars().all(|c| c.is_ascii_lowercase()));
            } else {
                assert!((1..=6).contains(&s.len()));
                assert!(s
                    .chars()
                    .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit()));
            }
        }
    }

    #[test]
    fn fixed_literals() {
        let mut rng = new_case_rng(3);
        assert_eq!(generate_from_pattern("abc", &mut rng), "abc");
        assert_eq!(generate_from_pattern("a\\.b", &mut rng), "a.b");
    }
}
