//! A self-contained stand-in for the parts of `parking_lot` this workspace
//! uses: [`Mutex`], [`RwLock`] and [`Condvar`] with the non-poisoning API,
//! implemented over `std::sync`. Poisoned locks are recovered transparently
//! (matching `parking_lot`'s no-poisoning semantics).

#![warn(missing_docs)]

use std::sync;

/// Guard types are the `std` guards; `parking_lot`'s expose the same
/// `Deref`/`DerefMut` surface.
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;
/// Shared read guard.
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Exclusive write guard.
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

/// A mutual exclusion primitive (non-poisoning `lock()` API).
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// A reader-writer lock (non-poisoning `read()`/`write()` API).
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock.
    pub fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// A condition variable compatible with [`Mutex`] guards.
#[derive(Debug, Default)]
pub struct Condvar(sync::Condvar);

impl Condvar {
    /// Creates a new condition variable.
    pub fn new() -> Self {
        Condvar(sync::Condvar::new())
    }

    /// Blocks the current thread until notified. Unlike `std`, takes the
    /// guard by `&mut` (the `parking_lot` signature).
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        // SAFETY-free rebind dance is impossible over std's API without
        // moving the guard; emulate by wait-through-replace.
        replace_with(guard, |g| self.0.wait(g).unwrap_or_else(|e| e.into_inner()));
    }

    /// Wakes one blocked thread.
    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    /// Wakes all blocked threads.
    pub fn notify_all(&self) {
        self.0.notify_all();
    }
}

/// Replaces `*slot` with `f(old)`, aborting on panic in `f` (guards cannot
/// be duplicated, so a panic mid-swap would be unsound to unwind from).
fn replace_with<'a, T>(
    slot: &mut MutexGuard<'a, T>,
    f: impl FnOnce(MutexGuard<'a, T>) -> MutexGuard<'a, T>,
) {
    struct AbortOnDrop;
    impl Drop for AbortOnDrop {
        fn drop(&mut self) {
            std::process::abort();
        }
    }
    let bomb = AbortOnDrop;
    unsafe {
        let old = std::ptr::read(slot);
        let new = f(old);
        std::ptr::write(slot, new);
    }
    std::mem::forget(bomb);
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_readers_and_writer() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
    }

    #[test]
    fn condvar_signals_across_threads() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let h = std::thread::spawn(move || {
            let (m, cv) = &*p2;
            let mut done = m.lock();
            while !*done {
                cv.wait(&mut done);
            }
        });
        {
            let (m, cv) = &*pair;
            *m.lock() = true;
            cv.notify_all();
        }
        h.join().unwrap();
    }
}
