//! A self-contained, dependency-free stand-in for the parts of the `rand`
//! 0.8 API this workspace uses, for fully offline builds.
//!
//! The generator behind [`rngs::SmallRng`] is xoshiro256** seeded through
//! SplitMix64 — the same construction the real `rand` crate has used for
//! `SmallRng` on 64-bit targets — so quality is adequate for the
//! statistical tests in this repository. Streams are deterministic per
//! seed but are **not** bit-compatible with upstream `rand`.

#![warn(missing_docs)]

/// Core random number generator interface: a source of `u32`/`u64` words.
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

/// A random number generator constructible from a seed.
pub trait SeedableRng: Sized {
    /// The seed type (kept simple: a little-endian byte array).
    type Seed: AsMut<[u8]> + Default;

    /// Creates a generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates a generator from a `u64` seed (via SplitMix64 expansion).
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = SplitMix64 { state };
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = sm.next().to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }

    /// Creates a generator from a fixed internal seed (offline stand-in:
    /// there is no OS entropy source here, so this is deterministic).
    fn from_entropy() -> Self {
        Self::seed_from_u64(0x853c_49e6_748f_ea9b)
    }
}

struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, non-cryptographic generator (xoshiro256**).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl RngCore for SmallRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for SmallRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks_exact(8).enumerate() {
                s[i] = u64::from_le_bytes(chunk.try_into().unwrap());
            }
            // All-zero state is a fixed point of xoshiro; nudge it.
            if s == [0; 4] {
                s = [0x9E37_79B9_7F4A_7C15, 1, 2, 3];
            }
            SmallRng { s }
        }
    }
}

/// Types that can be produced uniformly from raw generator output
/// (the stand-in for `rand`'s `Standard` distribution).
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u8 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 56) as u8
    }
}

impl Standard for u16 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 48) as u16
    }
}

impl Standard for u32 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for usize {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() >> 63 == 1
    }
}

impl Standard for f32 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 24 high bits -> [0, 1) with full float precision.
        ((rng.next_u64() >> 40) as f32) * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for f64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64)
    }
}

/// Types uniformly sampleable from a range (the stand-in for
/// `rand`'s `SampleUniform`).
pub trait SampleUniform: PartialOrd + Copy {
    /// Draws uniformly from `[low, high)`.
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
    /// Draws uniformly from `[low, high]`.
    fn sample_closed<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "gen_range: empty range");
                let span = (high as i128 - low as i128) as u128;
                let v = widening_reduce(rng.next_u64(), span);
                (low as i128 + v as i128) as $t
            }
            fn sample_closed<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low <= high, "gen_range: empty range");
                let span = (high as i128 - low as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    // Only 64-bit types can hit this (full-word range):
                    // a raw word reinterpreted two's-complement is uniform.
                    return rng.next_u64() as $t;
                }
                let v = widening_reduce(rng.next_u64(), span);
                (low as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Maps a uniform `u64` onto `[0, span)` with Lemire's multiply-shift
/// reduction (bias ≤ span/2^64, negligible here).
fn widening_reduce(word: u64, span: u128) -> u64 {
    debug_assert!(span > 0 && span <= u64::MAX as u128);
    ((word as u128 * span) >> 64) as u64
}

macro_rules! impl_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "gen_range: empty range");
                let u = <$t as Standard>::draw(rng);
                let v = low + (high - low) * u;
                // Guard the open upper bound against rounding.
                if v >= high { low } else { v }
            }
            fn sample_closed<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low <= high, "gen_range: empty range");
                let u = <$t as Standard>::draw(rng);
                low + (high - low) * u
            }
        }
    )*};
}

impl_uniform_float!(f32, f64);

/// Range argument for [`Rng::gen_range`] (stand-in for `SampleRange`).
pub trait SampleRange<T> {
    /// Draws uniformly from the range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_closed(rng, *self.start(), *self.end())
    }
}

/// Convenience extension methods over [`RngCore`] (the `rand::Rng` surface
/// used by this workspace).
pub trait Rng: RngCore {
    /// Draws a value of type `T` from the standard distribution.
    fn gen<T: Standard>(&mut self) -> T {
        T::draw(self)
    }

    /// Draws uniformly from `range`.
    fn gen_range<T, Rg>(&mut self, range: Rg) -> T
    where
        T: SampleUniform,
        Rg: SampleRange<T>,
    {
        range.sample(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p out of range");
        <f64 as Standard>::draw(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Minimal `rand::prelude`.
pub mod prelude {
    pub use crate::rngs::SmallRng;
    pub use crate::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SmallRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v: u32 = rng.gen_range(10..20);
            assert!((10..20).contains(&v));
            let f: f64 = rng.gen_range(0.25..0.75);
            assert!((0.25..0.75).contains(&f));
            let c: usize = rng.gen_range(0..=3);
            assert!(c <= 3);
        }
    }

    #[test]
    fn float_standard_is_unit_interval() {
        let mut rng = SmallRng::seed_from_u64(2);
        let mut sum = 0.0f64;
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean = {mean}");
    }

    #[test]
    fn int_range_is_roughly_uniform() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut counts = [0u32; 8];
        for _ in 0..80_000 {
            counts[rng.gen_range(0usize..8)] += 1;
        }
        for &c in &counts {
            assert!((c as i64 - 10_000).abs() < 800, "counts = {counts:?}");
        }
    }
}
