//! A self-contained stand-in for the `criterion` API surface this
//! workspace's benches use. It executes each benchmark closure a small
//! fixed number of iterations and prints a rough mean time — enough to
//! keep `cargo bench` runnable and the bench code compiling offline,
//! without the statistical machinery.

#![warn(missing_docs)]

use std::time::Instant;

/// Number of timed iterations per benchmark.
const ITERS: u32 = 10;

/// Prevents the compiler from optimising a value away.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Throughput annotation (recorded, echoed in output).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A benchmark identifier composed of a function name and a parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// Creates an id `"{name}/{parameter}"`.
    pub fn new(name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            name: format!("{}/{}", name.into(), parameter),
        }
    }

    /// Creates an id from a parameter alone.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            name: parameter.to_string(),
        }
    }
}

/// The per-iteration timer handle passed to benchmark closures.
#[derive(Debug, Default)]
pub struct Bencher {
    total_ns: u128,
    iters: u32,
}

impl Bencher {
    /// Times `f` over a fixed number of iterations.
    pub fn iter<T>(&mut self, mut f: impl FnMut() -> T) {
        let start = Instant::now();
        for _ in 0..ITERS {
            black_box(f());
        }
        self.total_ns += start.elapsed().as_nanos();
        self.iters += ITERS;
    }
}

/// The top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Creates a driver with default settings.
    #[allow(clippy::should_implement_trait)]
    pub fn default() -> Self {
        Criterion {}
    }

    /// Runs a single named benchmark.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(name, None, f);
        self
    }

    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
            throughput: None,
        }
    }

    /// Configuration hook (ignored by the stand-in).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Finalisation hook (ignored by the stand-in).
    pub fn final_summary(&mut self) {}
}

/// A group of related benchmarks.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the throughput annotation for subsequent benchmarks.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Configuration hook (ignored by the stand-in).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Runs a named benchmark within the group.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&format!("{}/{}", self.name, name), self.throughput, f);
        self
    }

    /// Runs a parameterised benchmark within the group.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_one(
            &format!("{}/{}", self.name, id.name),
            self.throughput,
            |b| f(b, input),
        );
        self
    }

    /// Closes the group.
    pub fn finish(self) {}
}

fn run_one<F>(name: &str, throughput: Option<Throughput>, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    let mut b = Bencher::default();
    f(&mut b);
    let mean = if b.iters > 0 {
        b.total_ns / b.iters as u128
    } else {
        0
    };
    match throughput {
        Some(Throughput::Elements(n)) => {
            println!("bench {name}: ~{mean} ns/iter ({n} elems/iter)")
        }
        Some(Throughput::Bytes(n)) => println!("bench {name}: ~{mean} ns/iter ({n} B/iter)"),
        None => println!("bench {name}: ~{mean} ns/iter"),
    }
}

/// Declares a benchmark group runner function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Declares the benchmark `main` function.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
