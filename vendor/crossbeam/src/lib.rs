//! A self-contained stand-in for the `crossbeam::channel` surface this
//! workspace uses: bounded/unbounded MPMC channels with cloneable senders
//! *and* receivers, built on `Mutex` + `Condvar`.

#![warn(missing_docs)]

/// Multi-producer multi-consumer channels.
pub mod channel {
    use std::collections::VecDeque;
    use std::sync::{Arc, Condvar, Mutex};

    struct Inner<T> {
        queue: Mutex<State<T>>,
        /// Signalled when an item arrives or all senders disconnect.
        recv_ready: Condvar,
        /// Signalled when space frees up or all receivers disconnect.
        send_ready: Condvar,
        cap: Option<usize>,
    }

    struct State<T> {
        items: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    /// The sending half of a channel. Cloneable.
    pub struct Sender<T>(Arc<Inner<T>>);

    /// The receiving half of a channel. Cloneable (MPMC).
    pub struct Receiver<T>(Arc<Inner<T>>);

    impl<T> std::fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("Sender { .. }")
        }
    }

    impl<T> std::fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("Receiver { .. }")
        }
    }

    /// Error returned by [`Sender::send`] when all receivers are gone;
    /// carries the unsent value.
    #[derive(PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> std::fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    /// Error returned by [`Receiver::recv`] when the channel is empty and
    /// all senders are gone.
    #[derive(Debug, PartialEq, Eq)]
    pub struct RecvError;

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, PartialEq, Eq)]
    pub enum TryRecvError {
        /// Nothing queued right now.
        Empty,
        /// Empty and all senders disconnected.
        Disconnected,
    }

    /// Error returned by [`Sender::try_send`]; carries the unsent value.
    #[derive(PartialEq, Eq)]
    pub enum TrySendError<T> {
        /// The bounded channel is full right now.
        Full(T),
        /// Every receiver has been dropped.
        Disconnected(T),
    }

    impl<T> std::fmt::Debug for TrySendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            match self {
                TrySendError::Full(_) => f.write_str("TrySendError::Full(..)"),
                TrySendError::Disconnected(_) => f.write_str("TrySendError::Disconnected(..)"),
            }
        }
    }

    /// Creates an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        with_capacity(None)
    }

    /// Creates a bounded channel: `send` blocks while `cap` items queue.
    /// A capacity of zero is modelled as capacity one (this stand-in has
    /// no rendezvous mode; the workspace never uses `bounded(0)`).
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        with_capacity(Some(cap.max(1)))
    }

    fn with_capacity<T>(cap: Option<usize>) -> (Sender<T>, Receiver<T>) {
        let inner = Arc::new(Inner {
            queue: Mutex::new(State {
                items: VecDeque::new(),
                senders: 1,
                receivers: 1,
            }),
            recv_ready: Condvar::new(),
            send_ready: Condvar::new(),
            cap,
        });
        (Sender(Arc::clone(&inner)), Receiver(inner))
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.0.queue.lock().unwrap().senders += 1;
            Sender(Arc::clone(&self.0))
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut st = self.0.queue.lock().unwrap();
            st.senders -= 1;
            if st.senders == 0 {
                self.0.recv_ready.notify_all();
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.0.queue.lock().unwrap().receivers += 1;
            Receiver(Arc::clone(&self.0))
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let mut st = self.0.queue.lock().unwrap();
            st.receivers -= 1;
            if st.receivers == 0 {
                self.0.send_ready.notify_all();
            }
        }
    }

    impl<T> Sender<T> {
        /// Sends a value, blocking while a bounded channel is full.
        ///
        /// # Errors
        ///
        /// [`SendError`] when every receiver has been dropped.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut st = self.0.queue.lock().unwrap();
            loop {
                if st.receivers == 0 {
                    return Err(SendError(value));
                }
                match self.0.cap {
                    Some(cap) if st.items.len() >= cap => {
                        st = self.0.send_ready.wait(st).unwrap();
                    }
                    _ => break,
                }
            }
            st.items.push_back(value);
            self.0.recv_ready.notify_one();
            Ok(())
        }

        /// Sends a value without blocking.
        ///
        /// # Errors
        ///
        /// [`TrySendError::Full`] when a bounded channel has no space;
        /// [`TrySendError::Disconnected`] when every receiver is gone.
        pub fn try_send(&self, value: T) -> Result<(), TrySendError<T>> {
            let mut st = self.0.queue.lock().unwrap();
            if st.receivers == 0 {
                return Err(TrySendError::Disconnected(value));
            }
            if let Some(cap) = self.0.cap {
                if st.items.len() >= cap {
                    return Err(TrySendError::Full(value));
                }
            }
            st.items.push_back(value);
            self.0.recv_ready.notify_one();
            Ok(())
        }
    }

    impl<T> Receiver<T> {
        /// Receives a value, blocking while the channel is empty.
        ///
        /// # Errors
        ///
        /// [`RecvError`] when empty and every sender has been dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut st = self.0.queue.lock().unwrap();
            loop {
                if let Some(v) = st.items.pop_front() {
                    self.0.send_ready.notify_one();
                    return Ok(v);
                }
                if st.senders == 0 {
                    return Err(RecvError);
                }
                st = self.0.recv_ready.wait(st).unwrap();
            }
        }

        /// Receives a value if one is queued, without blocking.
        ///
        /// # Errors
        ///
        /// [`TryRecvError::Empty`] / [`TryRecvError::Disconnected`].
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut st = self.0.queue.lock().unwrap();
            if let Some(v) = st.items.pop_front() {
                self.0.send_ready.notify_one();
                return Ok(v);
            }
            if st.senders == 0 {
                Err(TryRecvError::Disconnected)
            } else {
                Err(TryRecvError::Empty)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::channel::*;

    #[test]
    fn unbounded_fifo() {
        let (tx, rx) = unbounded();
        for i in 0..10 {
            tx.send(i).unwrap();
        }
        for i in 0..10 {
            assert_eq!(rx.recv().unwrap(), i);
        }
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
    }

    #[test]
    fn disconnect_propagates() {
        let (tx, rx) = unbounded::<u32>();
        drop(tx);
        assert_eq!(rx.recv(), Err(RecvError));
        assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));

        let (tx, rx) = unbounded::<u32>();
        drop(rx);
        assert_eq!(tx.send(1), Err(SendError(1)));
    }

    #[test]
    fn bounded_applies_backpressure() {
        let (tx, rx) = bounded::<u32>(2);
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        let t = std::thread::spawn(move || {
            tx.send(3).unwrap(); // blocks until a recv frees a slot
            "sent"
        });
        assert_eq!(rx.recv().unwrap(), 1);
        assert_eq!(t.join().unwrap(), "sent");
        assert_eq!(rx.recv().unwrap(), 2);
        assert_eq!(rx.recv().unwrap(), 3);
    }

    #[test]
    fn try_send_never_blocks() {
        let (tx, rx) = bounded::<u32>(1);
        assert!(tx.try_send(1).is_ok());
        assert_eq!(tx.try_send(2), Err(TrySendError::Full(2)));
        assert_eq!(rx.recv().unwrap(), 1);
        assert!(tx.try_send(3).is_ok());
        drop(rx);
        assert_eq!(tx.try_send(4), Err(TrySendError::Disconnected(4)));
    }

    #[test]
    fn mpmc_consumes_every_item_once() {
        let (tx, rx) = unbounded::<u64>();
        let consumers: Vec<_> = (0..4)
            .map(|_| {
                let rx = rx.clone();
                std::thread::spawn(move || {
                    let mut sum = 0u64;
                    while let Ok(v) = rx.recv() {
                        sum += v;
                    }
                    sum
                })
            })
            .collect();
        drop(rx);
        let total: u64 = (1..=1000).sum();
        for v in 1..=1000 {
            tx.send(v).unwrap();
        }
        drop(tx);
        let got: u64 = consumers.into_iter().map(|h| h.join().unwrap()).sum();
        assert_eq!(got, total);
    }
}
