//! # NosWalker (reproduction)
//!
//! Facade crate re-exporting the whole NosWalker reproduction workspace:
//! a decoupled out-of-core random walk system (ASPLOS 2023) together with
//! the substrates (graph + simulated storage), baseline systems, and
//! applications it is evaluated against.
//!
//! Start with [`core::NosWalkerEngine`] or the `examples/` directory.

#![forbid(unsafe_code)]

pub use noswalker_apps as apps;
pub use noswalker_baselines as baselines;
pub use noswalker_core as core;
pub use noswalker_graph as graph;
pub use noswalker_serve as serve;
pub use noswalker_shard as shard;
pub use noswalker_storage as storage;
